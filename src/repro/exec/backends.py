"""Pluggable execution backends for the experiment runner.

A backend is the *how* of batch execution: given a sequence of
:class:`~repro.exec.Experiment`\\ s it produces one
:class:`~repro.sim.system.SystemReport` per experiment. Everything
else — deduplication, cache consultation, persistence, progress —
stays in :class:`~repro.exec.Runner`, so every backend gets those for
free and swapping backends cannot change *what* a batch means.

The contract (:class:`ExecutionBackend`) is a single generator method::

    submit(experiments, notify=None) -> iterator of (index, report)

yielding ``(index, SystemReport)`` pairs as results complete, in any
order (``index`` is the position within the submitted batch). Yielding
instead of returning lets the runner store results into the persistent
cache and emit progress the moment each one lands, even when a remote
worker finishes out of order. ``notify(label, source)`` is an optional
hook for non-completion events — currently only ``"retry"``, emitted
by the distributed dispatcher when a task is re-queued.

Every backend round-trips results through ``SystemReport.to_dict()``
— including the in-process :class:`SerialBackend` — so a batch
produces byte-identical reports whatever executes it.

Implementations:

* :class:`SerialBackend` — in-process, in-order; the reference
  semantics.
* :class:`ForkPoolBackend` — a ``multiprocessing`` fork pool
  (extracted from the original ``Runner`` internals); falls back to
  serial where ``fork`` is unavailable.
* :class:`DistributedBackend` — ships experiments to TCP workers
  (``python -m repro worker serve``) over the length-prefixed JSON
  protocol in :mod:`repro.exec.wire`, with per-task timeouts, bounded
  retry with exponential backoff, per-worker health tracking, and
  automatic re-queue of tasks stranded on dead workers.
"""

from __future__ import annotations

import abc
import multiprocessing
import queue
import socket
import threading
import time
from typing import (Any, Callable, Dict, Iterator, List, Optional, Sequence,
                    Tuple, Union)

from ..errors import BackendError, WireProtocolError
from ..obs import DEFAULT_DURATION_BUCKETS_NS, MetricsRegistry, default_tracer
from ..sim.system import SystemReport
from .experiment import Experiment
from .spec import BackendSpec
from .wire import (MSG_ERROR, MSG_RESULT, recv_message, run_request,
                   send_message)
from .workloads import execute_experiment

#: non-completion event hook: (experiment label, event source)
NotifyFn = Callable[[str, str], None]

#: a worker endpoint: ("host", port) or a "host:port" string
Address = Union[Tuple[str, int], str]


def _execute_to_dict(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Worker entry point: run one serialized experiment.

    Takes and returns plain dicts so the function behaves identically
    under every ``multiprocessing`` start method, over the wire, and
    in-process.
    """
    experiment = Experiment.from_dict(payload)
    return execute_experiment(experiment).to_dict()


def _fork_context() -> Optional[multiprocessing.context.BaseContext]:
    """The fork start-method context, or ``None`` where unsupported."""
    try:
        if "fork" not in multiprocessing.get_all_start_methods():
            return None
        return multiprocessing.get_context("fork")
    except ValueError:      # pragma: no cover - platform specific
        return None


class ExecutionBackend(abc.ABC):
    """The strategy interface :class:`~repro.exec.Runner` executes through."""

    @abc.abstractmethod
    def submit(self, experiments: Sequence[Experiment], *,
               notify: Optional[NotifyFn] = None,
               ) -> Iterator[Tuple[int, SystemReport]]:
        """Execute a batch, yielding ``(index, report)`` as results land.

        ``index`` is the experiment's position in ``experiments``;
        pairs may arrive in any order but each index appears exactly
        once. Implementations must raise (not swallow) when a task
        cannot be completed, and must release their resources when the
        generator is closed early.
        """

    def describe(self) -> str:
        """A short human-readable label for logs and CLI output."""
        return type(self).__name__

    @classmethod
    def from_spec(cls, spec: Union["ExecutionBackend", BackendSpec, str], *,
                  metrics: Optional[MetricsRegistry] = None,
                  task_timeout: Optional[float] = None) -> "ExecutionBackend":
        """The backend a spec string / :class:`BackendSpec` describes.

        The one factory behind every entry point: ``"serial"``,
        ``"fork:8"``, ``"dist://h1:7070,h2:7070"``,
        ``"cluster://host:7071?weight=3"`` (grammar in
        :mod:`repro.exec.spec`). An already-constructed backend passes
        through unchanged, so call sites can accept either form.
        """
        if isinstance(spec, ExecutionBackend):
            return spec
        return BackendSpec.coerce(spec).create(metrics=metrics,
                                               task_timeout=task_timeout)


class SerialBackend(ExecutionBackend):
    """In-process, in-order execution — the reference backend.

    Results still round-trip through ``to_dict`` so serial output is
    byte-identical to every other backend's.
    """

    def submit(self, experiments: Sequence[Experiment], *,
               notify: Optional[NotifyFn] = None,
               ) -> Iterator[Tuple[int, SystemReport]]:
        for index, experiment in enumerate(experiments):
            document = _execute_to_dict(experiment.to_dict())
            yield index, SystemReport.from_dict(document)

    def describe(self) -> str:
        return "serial"


class ForkPoolBackend(ExecutionBackend):
    """A ``multiprocessing`` fork pool of ``jobs`` worker processes.

    Where the platform lacks the ``fork`` start method (or the batch
    needs at most one worker) it degrades to serial in-process
    execution — same results either way.
    """

    def __init__(self, jobs: int) -> None:
        if jobs < 1:
            raise BackendError(f"jobs must be >= 1, got {jobs}")
        self.jobs = int(jobs)

    def submit(self, experiments: Sequence[Experiment], *,
               notify: Optional[NotifyFn] = None,
               ) -> Iterator[Tuple[int, SystemReport]]:
        payloads = [experiment.to_dict() for experiment in experiments]
        jobs = min(self.jobs, len(payloads))
        context = _fork_context() if jobs > 1 else None
        if context is None:
            # Serial fallback: one job, or no fork on this platform.
            for index, payload in enumerate(payloads):
                yield index, SystemReport.from_dict(_execute_to_dict(payload))
            return
        with context.Pool(processes=jobs) as pool:
            documents = pool.imap(_execute_to_dict, payloads)
            for index, document in enumerate(documents):
                yield index, SystemReport.from_dict(document)

    def describe(self) -> str:
        return f"fork-pool({self.jobs})"


# ---------------------------------------------------------------------------
# The distributed dispatcher
# ---------------------------------------------------------------------------

def parse_address(value: Address) -> Tuple[str, int]:
    """Normalise ``"host:port"`` / ``("host", port)`` to a tuple."""
    if isinstance(value, str):
        host, separator, port_text = value.rpartition(":")
        if not separator or not host:
            raise BackendError(
                f"worker address must look like 'host:port', got {value!r}")
        try:
            return host, int(port_text)
        except ValueError:
            raise BackendError(f"bad worker port in address {value!r}")
    host, port = value
    return str(host), int(port)


class _Task:
    """One unit of dispatch: a serialized experiment plus retry state."""

    __slots__ = ("index", "payload", "label", "attempts")

    def __init__(self, index: int, payload: Dict[str, Any], label: str) -> None:
        self.index = index
        self.payload = payload
        self.label = label
        self.attempts = 0       # failed attempts charged to the task


class _WorkerState:
    """Health bookkeeping for one remote worker endpoint."""

    __slots__ = ("address", "consecutive_failures", "alive", "completed",
                 "last_metrics", "spans")

    def __init__(self, address: Tuple[str, int]) -> None:
        self.address = address
        self.consecutive_failures = 0
        self.alive = True
        self.completed = 0
        # The worker's latest cumulative registry snapshot. Kept
        # last-wins (not merged per frame) because each frame carries
        # the worker's running totals; merging every frame would
        # multiply-count them.
        self.last_metrics: Optional[Dict[str, Any]] = None
        # Span records shipped on result frames. Unlike metrics these
        # are per-task (not cumulative), so they accumulate.
        self.spans: List[Dict[str, Any]] = []


class _WorkerDown(Exception):
    """The worker endpoint failed (connect refused, reset mid-task).

    Charged to the *worker's* health, not the task's retry budget: the
    task is requeued for the surviving workers.
    """


class _TaskFailed(Exception):
    """The task attempt itself failed (timeout or an error reply)."""

    def __init__(self, message: str, *, timed_out: bool = False) -> None:
        super().__init__(message)
        self.timed_out = timed_out


class DistributedBackend(ExecutionBackend):
    """Dispatch experiments to remote TCP workers.

    Parameters
    ----------
    workers:
        Worker endpoints: ``("host", port)`` tuples or ``"host:port"``
        strings. One dispatcher thread drives each endpoint.
    task_timeout:
        Seconds to wait for one task's result before charging the
        attempt against the task's retry budget.
    max_retries:
        Failed attempts (timeouts, error replies) a task survives
        before the whole batch fails with :class:`BackendError` naming
        the experiment.
    backoff_base / backoff_cap:
        Exponential backoff between a task's retries:
        ``min(cap, base * 2**(attempts-1))`` seconds.
    connect_timeout:
        Seconds to wait for a TCP connection to a worker.
    max_worker_failures:
        Consecutive endpoint failures (refused connections, resets)
        before a worker is declared dead and its tasks re-queued for
        the survivors. When every worker is dead with work still
        outstanding the batch fails.
    metrics:
        A :class:`~repro.obs.MetricsRegistry` receiving ``exec.dist.*``
        dispatch telemetry (requeues, retries, timeouts, per-task wall
        time) plus each worker's merged ``exec.worker.*`` counters.
        Defaults to a private registry.
    """

    def __init__(self, workers: Sequence[Address], *,
                 task_timeout: float = 300.0,
                 max_retries: int = 3,
                 backoff_base: float = 0.05,
                 backoff_cap: float = 2.0,
                 connect_timeout: float = 5.0,
                 max_worker_failures: int = 3,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        addresses = [parse_address(worker) for worker in workers]
        if not addresses:
            raise BackendError("DistributedBackend needs at least one worker")
        self.addresses = addresses
        self.task_timeout = float(task_timeout)
        self.max_retries = int(max_retries)
        self.backoff_base = float(backoff_base)
        self.backoff_cap = float(backoff_cap)
        self.connect_timeout = float(connect_timeout)
        self.max_worker_failures = int(max_worker_failures)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._m_completed = self.metrics.counter(
            "exec.dist.tasks_completed", unit="ops")
        self._m_requeues = self.metrics.counter(
            "exec.dist.requeues", unit="ops")
        self._m_task_failures = self.metrics.counter(
            "exec.dist.task_failures", unit="ops")
        self._m_timeouts = self.metrics.counter(
            "exec.dist.timeouts", unit="ops")
        self._m_worker_failures = self.metrics.counter(
            "exec.dist.worker_failures", unit="ops")
        self._m_task_duration = self.metrics.histogram(
            "exec.dist.task_duration_ns", unit="ns",
            buckets=DEFAULT_DURATION_BUCKETS_NS)

    def describe(self) -> str:
        endpoints = ",".join(f"{host}:{port}" for host, port in self.addresses)
        return f"distributed({endpoints})"

    # -- dispatch -------------------------------------------------------------------

    def submit(self, experiments: Sequence[Experiment], *,
               notify: Optional[NotifyFn] = None,
               ) -> Iterator[Tuple[int, SystemReport]]:
        total = len(experiments)
        if not total:
            return
        tasks: "queue.Queue[_Task]" = queue.Queue()
        for index, experiment in enumerate(experiments):
            label = experiment.name or experiment.workload
            tasks.put(_Task(index, experiment.to_dict(), label))

        # One trace context for the whole batch, captured on the
        # caller's thread so the runner's open exec.batch span becomes
        # the remote tasks' parent.
        trace = default_tracer().context().to_dict()
        results: "queue.Queue[Tuple[str, Any, Any]]" = queue.Queue()
        stop = threading.Event()
        states = [_WorkerState(address) for address in self.addresses]
        threads = [
            threading.Thread(target=self._drive_worker, name=f"repro-dispatch-{i}",
                             args=(state, tasks, results, stop, notify, trace),
                             daemon=True)
            for i, state in enumerate(states)
        ]
        for thread in threads:
            thread.start()

        delivered = 0
        seen = set()
        try:
            while delivered < total:
                try:
                    kind, first, second = results.get(timeout=0.1)
                except queue.Empty:
                    if not any(thread.is_alive() for thread in threads):
                        outstanding = total - delivered
                        raise BackendError(
                            f"all {len(states)} workers died with "
                            f"{outstanding} tasks outstanding "
                            f"(endpoints: {self.describe()})")
                    continue
                if kind == "fatal":
                    raise first
                index, document = first, second
                if index in seen:       # pragma: no cover - defensive
                    continue
                seen.add(index)
                delivered += 1
                yield index, SystemReport.from_dict(document)
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=5.0)
            # Fold each worker's final cumulative snapshot in exactly
            # once, after the dispatch threads are done writing them.
            for state in states:
                if state.last_metrics:
                    self.metrics.merge_snapshot(state.last_metrics)
                if state.spans:
                    default_tracer().ingest(state.spans)

    def _drive_worker(self, state: _WorkerState, tasks: "queue.Queue[_Task]",
                      results: "queue.Queue[Tuple[str, Any, Any]]",
                      stop: threading.Event,
                      notify: Optional[NotifyFn],
                      trace: Optional[Dict[str, Any]] = None) -> None:
        while not stop.is_set():
            try:
                task = tasks.get(timeout=0.05)
            except queue.Empty:
                continue
            started = time.perf_counter_ns()
            try:
                document = self._dispatch(state, task.payload, trace=trace)
            except _WorkerDown as error:
                # The endpoint's fault: requeue for the survivors,
                # charge the worker's health, not the task.
                tasks.put(task)
                self._m_requeues.inc()
                if notify is not None:
                    notify(task.label, "retry")
                state.consecutive_failures += 1
                if state.consecutive_failures >= self.max_worker_failures:
                    state.alive = False
                    self._m_worker_failures.inc()
                    return
                time.sleep(self._backoff(state.consecutive_failures))
            except _TaskFailed as error:
                task.attempts += 1
                self._m_task_failures.inc()
                if error.timed_out:
                    self._m_timeouts.inc()
                if task.attempts > self.max_retries:
                    results.put(("fatal", BackendError(
                        f"experiment {task.label!r} failed after "
                        f"{task.attempts} attempts "
                        f"(last worker {state.address[0]}:{state.address[1]}): "
                        f"{error}"), None))
                    return
                if notify is not None:
                    notify(task.label, "retry")
                time.sleep(self._backoff(task.attempts))
                tasks.put(task)
            else:
                state.consecutive_failures = 0
                state.completed += 1
                self._m_completed.inc()
                self._m_task_duration.observe(time.perf_counter_ns() - started)
                results.put(("result", task.index, document))

    def _backoff(self, attempts: int) -> float:
        return min(self.backoff_cap,
                   self.backoff_base * (2 ** max(attempts - 1, 0)))

    def _dispatch(self, state: _WorkerState,
                  payload: Dict[str, Any], *,
                  trace: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        """Run one task on one worker; raise a classified failure."""
        address = state.address
        try:
            sock = socket.create_connection(address,
                                            timeout=self.connect_timeout)
        except OSError as error:
            raise _WorkerDown(f"connect failed: {error}")
        try:
            sock.settimeout(self.task_timeout)
            try:
                send_message(sock, run_request(payload, trace=trace))
                reply = recv_message(sock)
            except socket.timeout:
                raise _TaskFailed(
                    f"no result within {self.task_timeout:g}s",
                    timed_out=True)
            except (OSError, WireProtocolError) as error:
                # Connection reset / truncated frame: the worker died
                # (or went insane) mid-task.
                raise _WorkerDown(f"connection lost mid-task: {error}")
        finally:
            sock.close()
        if reply.get("type") == MSG_RESULT and "result" in reply:
            if isinstance(reply.get("metrics"), dict):
                state.last_metrics = reply["metrics"]
            if isinstance(reply.get("spans"), list):
                state.spans.extend(reply["spans"])
            return reply["result"]
        if reply.get("type") == MSG_ERROR:
            raise _TaskFailed(
                f"{reply.get('kind', 'Error')}: {reply.get('error', '?')}")
        raise _TaskFailed(f"unexpected reply type {reply.get('type')!r}")


def resolve_backend(jobs: int = 1,
                    backend: Optional[Union[ExecutionBackend, BackendSpec,
                                            str]] = None,
                    ) -> ExecutionBackend:
    """The backend a ``Runner(jobs=..., backend=...)`` call means.

    An explicit ``backend`` wins (and is incompatible with ``jobs >
    1`` — the two would contradict each other); it may be an
    :class:`ExecutionBackend` instance, a :class:`BackendSpec`, or a
    spec string like ``"fork:8"`` or ``"cluster://host:7071"``.
    Otherwise ``jobs`` picks serial or a fork pool, preserving the
    original ``Runner`` behaviour.
    """
    if backend is not None:
        if isinstance(backend, (str, BackendSpec)):
            backend = ExecutionBackend.from_spec(backend)
        if not isinstance(backend, ExecutionBackend):
            raise BackendError(
                f"backend must be an ExecutionBackend or spec string, "
                f"got {type(backend).__name__}")
        if jobs != 1:
            raise BackendError(
                "pass either jobs=N or backend=..., not both")
        return backend
    if jobs < 1:
        raise BackendError(f"jobs must be >= 1, got {jobs}")
    return SerialBackend() if jobs == 1 else ForkPoolBackend(jobs)
