"""The distributed experiment worker: a small TCP task server.

``python -m repro worker serve --port 7070`` turns any machine with
the ``repro`` package into an execution endpoint for
:class:`~repro.exec.DistributedBackend`. The server speaks the
length-prefixed JSON protocol of :mod:`repro.exec.wire`, one request
per connection: the dispatcher connects, sends a ``run`` frame
carrying an ``Experiment.to_dict()`` document, and the worker answers
with a ``result`` frame (the ``SystemReport.to_dict()`` payload) or an
``error`` frame if the task raised. Executor exceptions never kill the
server — the dispatcher owns the retry decision.

Workers are deliberately sequential (one task at a time): parallelism
comes from running more workers, which keeps each worker's memory
footprint to a single simulation and makes health tracking in the
dispatcher trivial.

:func:`spawn_local_workers` forks worker processes on this machine —
the easy way to use every local core through the same code path as a
remote fleet, and how the test-suite exercises fault handling.

Besides the listen-and-accept mode above, a worker can *register* with
an experiment cluster dispatcher (:mod:`repro.exec.cluster`) instead:
:func:`run_registered_worker` dials out to the dispatcher, holds one
persistent authenticated connection, heartbeats while idle, executes
``run`` frames as they arrive, and drains gracefully on shutdown —
``python -m repro worker serve --register HOST:PORT``. No inbound port
is needed, so fleets behind NAT or in containers just work.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import os
import socket
import threading
import time
from pathlib import Path
from typing import Callable, Iterator, List, Optional, Sequence, Tuple, Union

from ..errors import BackendError, WireAuthError, WireProtocolError
from ..obs import DEFAULT_DURATION_BUCKETS_NS, MetricsRegistry
from .wire import (MSG_DRAIN, MSG_GOODBYE, MSG_OK, MSG_PING, MSG_PONG,
                   MSG_RUN, MSG_SHUTDOWN, MSG_WELCOME, FrameAuth, error_reply,
                   hello_message, recv_message, result_reply, send_message)


class WorkerServer:
    """A sequential one-task-per-connection experiment server.

    Parameters
    ----------
    host / port:
        Bind address. ``port=0`` asks the OS for an ephemeral port;
        :meth:`bind` returns the port actually bound.
    max_tasks:
        Stop serving after this many ``run`` requests (``None`` =
        serve forever). Gives tests and batch deployments a bounded
        lifetime.
    cache_dir:
        When given, the worker consults/populates a
        :class:`~repro.exec.ResultCache` rooted there before executing
        each task, so repeated dispatches of the same experiment (e.g.
        after a dispatcher restart) are served from disk. The cache key
        includes the code-version salt, so worker and dispatcher code
        drift can never serve stale results.
    metrics:
        The worker's :class:`~repro.obs.MetricsRegistry` (defaults to a
        fresh one). Cumulative ``exec.worker.*`` counters ride on every
        ``result`` frame for merged reporting by the dispatcher.
    """

    #: Idle limit for reading a request off an accepted connection.
    REQUEST_TIMEOUT = 30.0

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 max_tasks: Optional[int] = None,
                 cache_dir: Optional[Union[str, Path]] = None,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self.host = host
        self.port = int(port)
        self.max_tasks = max_tasks
        self.tasks_served = 0
        self._socket: Optional[socket.socket] = None
        self._shutdown = False
        self.cache = None
        if cache_dir is not None:
            from .cache import ResultCache
            self.cache = ResultCache(cache_dir)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        if self.cache is not None:
            self.cache.bind_metrics(self.metrics, prefix="exec.worker.cache")
        self._tasks_counter = self.metrics.counter(
            "exec.worker.tasks_served", unit="ops")
        self._errors_counter = self.metrics.counter(
            "exec.worker.errors", unit="ops")
        self._duration_hist = self.metrics.histogram(
            "exec.worker.task_duration_ns", unit="ns",
            buckets=DEFAULT_DURATION_BUCKETS_NS)

    def bind(self) -> int:
        """Bind and listen; returns the bound port."""
        if self._socket is not None:
            return self.port
        server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            server.bind((self.host, self.port))
            server.listen(16)
        except OSError:
            server.close()
            raise
        self._socket = server
        self.port = server.getsockname()[1]
        return self.port

    def serve_forever(self) -> None:
        """Accept and handle connections until shut down.

        Returns after a ``shutdown`` frame, after ``max_tasks`` run
        requests, or when :meth:`close` is called from another thread.
        """
        self.bind()
        assert self._socket is not None
        try:
            while not self._shutdown:
                if self.max_tasks is not None \
                        and self.tasks_served >= self.max_tasks:
                    break
                try:
                    connection, _ = self._socket.accept()
                except OSError:
                    break       # socket closed under us: clean stop
                with contextlib.closing(connection):
                    self._handle(connection)
        finally:
            self.close()

    def close(self) -> None:
        self._shutdown = True
        if self._socket is not None:
            try:
                self._socket.close()
            except OSError:     # pragma: no cover - double close
                pass
            self._socket = None

    # -- request handling -----------------------------------------------------------

    def _handle(self, connection: socket.socket) -> None:
        connection.settimeout(self.REQUEST_TIMEOUT)
        try:
            request = recv_message(connection)
        except (WireProtocolError, OSError):
            return      # garbage or impatient client: drop silently
        kind = request.get("type")
        if kind == MSG_RUN:
            self.tasks_served += 1
            self._reply(connection, self._run(request))
        elif kind == MSG_PING:
            # Humans (and the wire tests) probing a standalone worker
            # read the served count; no in-tree peer consumes it.
            self._reply(connection, {
                "type": MSG_PONG,
                "tasks_served": self.tasks_served,  # repro: suppress REPRO602 -- operator probe
            })
        elif kind == MSG_SHUTDOWN:
            self._reply(connection, {"type": MSG_OK})
            self._shutdown = True
        else:
            self._reply(connection, error_reply(
                BackendError(f"unknown request type {kind!r}")))

    def _run(self, request: dict) -> dict:
        started = time.perf_counter_ns()
        try:
            document = request["experiment"]
            if not isinstance(document, dict):
                raise BackendError("run request carries no experiment dict")
            # A propagated trace context makes this task's span part of
            # the dispatching client's timeline; without one the span
            # roots a fresh single-process trace.
            from ..obs import SpanTracer, TraceContext
            context = TraceContext.from_dict(request.get("trace"))
            tracer = SpanTracer.for_context(context, process="worker")
            with tracer.span("exec.worker.task",
                             attrs={"label": str(document.get("name")
                                                or document.get("workload")
                                                or "?")}) as record:
                report_doc, cache_hit = self._execute_cached(document)
                record.attrs["cache_hit"] = cache_hit
            self._tasks_counter.inc()
            self._duration_hist.observe(time.perf_counter_ns() - started)
            return result_reply(report_doc, metrics=self.metrics.snapshot(),
                                spans=tracer.snapshot())
        except Exception as error:      # noqa: BLE001 - survive any task
            self._errors_counter.inc()
            return error_reply(error)

    def _execute_cached(self, document: dict) -> tuple:
        """Run one experiment document, through the worker cache if any.

        Returns ``(report_doc, cache_hit)``.
        """
        # Imported lazily so a worker process only pays for the
        # simulator once it actually receives work.
        from .backends import _execute_to_dict
        if self.cache is None:
            return _execute_to_dict(document), False
        from .experiment import Experiment
        experiment = Experiment.from_dict(document)
        cached = self.cache.get(experiment)
        if cached is not None:
            return cached.to_dict(), True
        report_doc = _execute_to_dict(document)
        from ..sim.system import SystemReport
        self.cache.put(experiment, SystemReport.from_dict(report_doc))
        return report_doc, False

    @staticmethod
    def _reply(connection: socket.socket, message: dict) -> None:
        try:
            send_message(connection, message)
        except (WireProtocolError, OSError):
            pass        # client went away: the dispatcher will retry


def serve(host: str = "127.0.0.1", port: int = 0, *,
          max_tasks: Optional[int] = None,
          cache_dir: Optional[Union[str, Path]] = None,
          emit_metrics: Optional[Union[str, Path]] = None,
          metrics_port: Optional[int] = None,
          announce: Optional[Callable[[str], None]] = None) -> int:
    """Run a worker server in this process until shutdown.

    Returns the number of tasks served. ``announce`` (if given)
    receives one line per bound endpoint once the sockets are up —
    first ``"listening on host:port"`` for the task socket, then
    ``"metrics on http://.../metrics"`` when a scrape endpoint is
    enabled — and the CLI prints them so scripts can scrape the
    ephemeral ports. ``cache_dir`` enables the worker-side result
    cache;
    ``emit_metrics`` writes the worker's final registry snapshot as a
    JSON-lines dump on shutdown; ``metrics_port`` additionally serves
    the live registry at ``http://host:metrics_port/metrics`` in the
    Prometheus text format for the worker's lifetime (``0`` asks the
    OS for a free port; the endpoint is announced alongside the task
    socket).
    """
    server = WorkerServer(host, port, max_tasks=max_tasks,
                          cache_dir=cache_dir)
    bound_port = server.bind()
    scrape = None
    if metrics_port is not None:
        from ..obs import start_metrics_server
        scrape = start_metrics_server(server.metrics, host=host,
                                      port=metrics_port)
    if announce is not None:
        announce(f"listening on {server.host}:{bound_port}")
        if scrape is not None:
            announce(f"metrics on http://{scrape.endpoint}/metrics")
    try:
        server.serve_forever()
    except KeyboardInterrupt:   # pragma: no cover - interactive only
        pass
    finally:
        server.close()
        if scrape is not None:
            scrape.close()
        if emit_metrics is not None:
            from ..obs import write_jsonl
            with open(emit_metrics, "w") as stream:
                write_jsonl(server.metrics.snapshot(), stream,
                            meta={"role": "worker",
                                  "endpoint": f"{server.host}:{bound_port}",
                                  "tasks_served": server.tasks_served})
    return server.tasks_served


# ---------------------------------------------------------------------------
# Registered (dial-out) cluster workers
# ---------------------------------------------------------------------------

#: Generous limit for the dispatcher's ``welcome`` during registration.
HANDSHAKE_TIMEOUT = 10.0

#: Consecutive failed registrations before a registered worker gives up
#: (a likely auth or version mismatch, not a transient outage).
MAX_HANDSHAKE_FAILURES = 3


def _dial_dispatcher(address: Tuple[str, int], window: float,
                     stop: threading.Event) -> Optional[socket.socket]:
    """Connect to the dispatcher, retrying within ``window`` seconds."""
    deadline = time.monotonic() + window
    while not stop.is_set():
        try:
            return socket.create_connection(address, timeout=5.0)
        except OSError:
            if time.monotonic() >= deadline:
                return None
            stop.wait(0.2)
    return None


def run_registered_worker(dispatcher: Union[str, Tuple[str, int]], *,
                          auth: Optional[FrameAuth] = None,
                          keyfile: Optional[Union[str, Path]] = None,
                          name: Optional[str] = None,
                          cache_dir: Optional[Union[str, Path]] = None,
                          max_tasks: Optional[int] = None,
                          heartbeat: float = 5.0,
                          connect_window: float = 10.0,
                          metrics: Optional[MetricsRegistry] = None,
                          announce: Optional[Callable[[str], None]] = None,
                          stop_event: Optional[threading.Event] = None,
                          ) -> int:
    """Serve an experiment cluster over one dial-out connection.

    Registers with the dispatcher at ``dispatcher`` (``"host:port"``),
    executes ``run`` frames one at a time, sends ``ping`` heartbeats
    while idle, and reconnects (within ``connect_window`` seconds) when
    the dispatcher drops. The worker leaves via graceful drain — after
    ``max_tasks`` tasks or once ``stop_event`` is set it asks the
    dispatcher to stop assigning work and exits on the dispatcher's
    ``goodbye``, so no task is ever abandoned mid-flight.

    ``auth``/``keyfile`` enable HMAC frame authentication (must match
    the dispatcher's key); a key mismatch raises
    :class:`~repro.errors.WireAuthError` instead of retrying forever.
    Returns the number of tasks served.
    """
    from .backends import parse_address
    address = parse_address(dispatcher)
    if auth is None and keyfile is not None:
        auth = FrameAuth.from_keyfile(keyfile)
    stop = stop_event if stop_event is not None else threading.Event()
    worker_name = name or f"worker-{os.getpid()}"
    # Reuse the listening worker's executor (cache + telemetry) so both
    # modes run tasks identically.
    server = WorkerServer(cache_dir=cache_dir, metrics=metrics)
    served = 0
    handshake_failures = 0
    while not stop.is_set():
        sock = _dial_dispatcher(address, connect_window, stop)
        if sock is None:
            break
        registered = False
        draining = False
        try:
            sock.settimeout(HANDSHAKE_TIMEOUT)
            send_message(sock, hello_message("worker", worker_name),
                         auth=auth)
            welcome = recv_message(sock, auth=auth)
            if welcome.get("type") != MSG_WELCOME:
                raise WireProtocolError(
                    f"dispatcher refused registration: {welcome!r}")
            registered = True
            handshake_failures = 0
            if announce is not None:
                announce(f"registered with {address[0]}:{address[1]} "
                         f"as {worker_name} "
                         f"(session {welcome.get('id', '?')})")
            sock.settimeout(heartbeat)
            while True:
                try:
                    message = recv_message(sock, auth=auth)
                except socket.timeout:
                    if (stop.is_set() or (max_tasks is not None
                                          and served >= max_tasks)):
                        if not draining:
                            send_message(sock, {"type": MSG_DRAIN},
                                         auth=auth)
                            draining = True
                    else:
                        send_message(sock, {"type": MSG_PING}, auth=auth)
                    continue
                kind = message.get("type")
                if kind == MSG_RUN:
                    server.tasks_served += 1
                    reply = server._run(message)
                    reply["task"] = message.get("task")
                    send_message(sock, reply, auth=auth)
                    served += 1
                    if max_tasks is not None and served >= max_tasks \
                            and not draining:
                        send_message(sock, {"type": MSG_DRAIN}, auth=auth)
                        draining = True
                elif kind == MSG_PONG:
                    snapshot = message.get("metrics")
                    if isinstance(snapshot, dict):
                        # Heartbeat replies carry the dispatcher's
                        # cumulative registry; mirroring it keeps this
                        # worker's scrape endpoint (--metrics-port)
                        # showing the whole cluster's exec.cluster.*
                        # instruments, not just exec.worker.*.
                        server.metrics.update_from_snapshot(snapshot)
                elif kind in (MSG_GOODBYE, MSG_SHUTDOWN):
                    return served
                # unknown frames: ignore
        except WireAuthError:
            raise       # wrong shared key: retrying cannot help
        except (WireProtocolError, OSError):
            if not registered:
                handshake_failures += 1
                if handshake_failures >= MAX_HANDSHAKE_FAILURES:
                    raise WireProtocolError(
                        f"dispatcher at {address[0]}:{address[1]} dropped "
                        f"{handshake_failures} registration attempts in a "
                        f"row (auth key mismatch?)")
            if stop.is_set():
                break
            # Dispatcher restart or network blip: dial again.
        finally:
            sock.close()
    return served


def _registered_worker_main(dispatcher: str, keyfile: Optional[str],
                            cache_dir: Optional[str],
                            max_tasks: Optional[int],
                            heartbeat: float) -> None:
    run_registered_worker(dispatcher, keyfile=keyfile, cache_dir=cache_dir,
                          max_tasks=max_tasks, heartbeat=heartbeat)


class RegisteredWorker:
    """Handle on one forked dial-out worker process."""

    def __init__(self, process: multiprocessing.process.BaseProcess) -> None:
        self.process = process

    def is_alive(self) -> bool:
        return self.process.is_alive()

    def terminate(self, timeout: float = 5.0) -> None:
        """Kill the worker process (SIGTERM) and reap it."""
        if self.process.is_alive():
            self.process.terminate()
        self.process.join(timeout)


def spawn_registered_workers(count: int, dispatcher: str, *,
                             keyfile: Optional[Union[str, Path]] = None,
                             cache_dir: Optional[Union[str, Path]] = None,
                             max_tasks: Optional[int] = None,
                             heartbeat: float = 1.0,
                             ) -> List[RegisteredWorker]:
    """Fork ``count`` workers that register with a cluster dispatcher.

    The forked processes inherit test-registered workload kinds (like
    :func:`spawn_local_workers`) and dial ``dispatcher``
    (``"host:port"``) on start; they exit when the dispatcher says
    goodbye.
    """
    if count < 1:
        raise BackendError(f"worker count must be >= 1, got {count}")
    methods = multiprocessing.get_all_start_methods()
    context = multiprocessing.get_context(
        "fork" if "fork" in methods else None)
    workers: List[RegisteredWorker] = []
    for _ in range(count):
        process = context.Process(
            target=_registered_worker_main,
            args=(dispatcher,
                  str(keyfile) if keyfile is not None else None,
                  str(cache_dir) if cache_dir is not None else None,
                  max_tasks, heartbeat),
            daemon=True)
        process.start()
        workers.append(RegisteredWorker(process))
    return workers


@contextlib.contextmanager
def registered_worker_pool(count: int, dispatcher: str, *,
                           keyfile: Optional[Union[str, Path]] = None,
                           cache_dir: Optional[Union[str, Path]] = None,
                           max_tasks: Optional[int] = None,
                           heartbeat: float = 1.0,
                           ) -> Iterator[List[RegisteredWorker]]:
    """``with registered_worker_pool(2, "host:7071"):`` — spawn, clean up."""
    workers = spawn_registered_workers(count, dispatcher, keyfile=keyfile,
                                       cache_dir=cache_dir,
                                       max_tasks=max_tasks,
                                       heartbeat=heartbeat)
    try:
        yield workers
    finally:
        for worker in workers:
            worker.terminate()


# ---------------------------------------------------------------------------
# Local worker pools
# ---------------------------------------------------------------------------

def _local_worker_main(channel, host: str,
                       max_tasks: Optional[int],
                       cache_dir: Optional[str] = None) -> None:
    """Child-process entry: bind, report the port, then serve."""
    server = WorkerServer(host, 0, max_tasks=max_tasks, cache_dir=cache_dir)
    try:
        port = server.bind()
    except OSError as error:    # pragma: no cover - bind races are rare
        channel.send(("error", str(error)))
        channel.close()
        return
    channel.send(("port", port))
    channel.close()
    server.serve_forever()


class LocalWorker:
    """Handle on one forked local worker process."""

    def __init__(self, process: multiprocessing.process.BaseProcess,
                 address: Tuple[str, int]) -> None:
        self.process = process
        self.address = address

    @property
    def endpoint(self) -> str:
        return f"{self.address[0]}:{self.address[1]}"

    def is_alive(self) -> bool:
        return self.process.is_alive()

    def terminate(self, timeout: float = 5.0) -> None:
        """Kill the worker process (SIGTERM) and reap it."""
        if self.process.is_alive():
            self.process.terminate()
        self.process.join(timeout)


def spawn_local_workers(count: int, *, host: str = "127.0.0.1",
                        max_tasks: Optional[int] = None,
                        cache_dir: Optional[Union[str, Path]] = None,
                        start_timeout: float = 30.0) -> List[LocalWorker]:
    """Fork ``count`` worker processes on this machine.

    Prefers the ``fork`` start method (workers inherit any
    test-registered workload kinds); falls back to the platform
    default elsewhere. Each returned :class:`LocalWorker` is already
    bound and accepting connections.
    """
    if count < 1:
        raise BackendError(f"worker count must be >= 1, got {count}")
    methods = multiprocessing.get_all_start_methods()
    context = multiprocessing.get_context(
        "fork" if "fork" in methods else None)
    workers: List[LocalWorker] = []
    try:
        for _ in range(count):
            parent_channel, child_channel = context.Pipe()
            cache_arg = str(cache_dir) if cache_dir is not None else None
            process = context.Process(target=_local_worker_main,
                                      args=(child_channel, host, max_tasks,
                                            cache_arg),
                                      daemon=True)
            process.start()
            child_channel.close()
            if not parent_channel.poll(start_timeout):
                raise BackendError("local worker did not report a port "
                                   f"within {start_timeout:g}s")
            kind, value = parent_channel.recv()
            parent_channel.close()
            if kind != "port":
                raise BackendError(f"local worker failed to bind: {value}")
            workers.append(LocalWorker(process, (host, int(value))))
    except BaseException:
        for worker in workers:
            worker.terminate()
        raise
    return workers


@contextlib.contextmanager
def local_worker_pool(count: int, *, host: str = "127.0.0.1",
                      max_tasks: Optional[int] = None,
                      cache_dir: Optional[Union[str, Path]] = None,
                      ) -> Iterator[List[LocalWorker]]:
    """``with local_worker_pool(2) as workers:`` — spawn and clean up."""
    workers = spawn_local_workers(count, host=host, max_tasks=max_tasks,
                                  cache_dir=cache_dir)
    try:
        yield workers
    finally:
        for worker in workers:
            worker.terminate()


def worker_addresses(workers: Sequence[LocalWorker]) -> List[Tuple[str, int]]:
    """The ``(host, port)`` endpoints of a local pool, dispatcher-ready."""
    return [worker.address for worker in workers]
