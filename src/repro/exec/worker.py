"""The distributed experiment worker: a small TCP task server.

``python -m repro worker serve --port 7070`` turns any machine with
the ``repro`` package into an execution endpoint for
:class:`~repro.exec.DistributedBackend`. The server speaks the
length-prefixed JSON protocol of :mod:`repro.exec.wire`, one request
per connection: the dispatcher connects, sends a ``run`` frame
carrying an ``Experiment.to_dict()`` document, and the worker answers
with a ``result`` frame (the ``SystemReport.to_dict()`` payload) or an
``error`` frame if the task raised. Executor exceptions never kill the
server — the dispatcher owns the retry decision.

Workers are deliberately sequential (one task at a time): parallelism
comes from running more workers, which keeps each worker's memory
footprint to a single simulation and makes health tracking in the
dispatcher trivial.

:func:`spawn_local_workers` forks worker processes on this machine —
the easy way to use every local core through the same code path as a
remote fleet, and how the test-suite exercises fault handling.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import socket
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

from ..errors import BackendError, WireProtocolError
from .wire import (MSG_OK, MSG_PING, MSG_PONG, MSG_RUN, MSG_SHUTDOWN,
                   error_reply, recv_message, result_reply, send_message)


class WorkerServer:
    """A sequential one-task-per-connection experiment server.

    Parameters
    ----------
    host / port:
        Bind address. ``port=0`` asks the OS for an ephemeral port;
        :meth:`bind` returns the port actually bound.
    max_tasks:
        Stop serving after this many ``run`` requests (``None`` =
        serve forever). Gives tests and batch deployments a bounded
        lifetime.
    """

    #: Idle limit for reading a request off an accepted connection.
    REQUEST_TIMEOUT = 30.0

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 max_tasks: Optional[int] = None) -> None:
        self.host = host
        self.port = int(port)
        self.max_tasks = max_tasks
        self.tasks_served = 0
        self._socket: Optional[socket.socket] = None
        self._shutdown = False

    def bind(self) -> int:
        """Bind and listen; returns the bound port."""
        if self._socket is not None:
            return self.port
        server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            server.bind((self.host, self.port))
            server.listen(16)
        except OSError:
            server.close()
            raise
        self._socket = server
        self.port = server.getsockname()[1]
        return self.port

    def serve_forever(self) -> None:
        """Accept and handle connections until shut down.

        Returns after a ``shutdown`` frame, after ``max_tasks`` run
        requests, or when :meth:`close` is called from another thread.
        """
        self.bind()
        assert self._socket is not None
        try:
            while not self._shutdown:
                if self.max_tasks is not None \
                        and self.tasks_served >= self.max_tasks:
                    break
                try:
                    connection, _ = self._socket.accept()
                except OSError:
                    break       # socket closed under us: clean stop
                with contextlib.closing(connection):
                    self._handle(connection)
        finally:
            self.close()

    def close(self) -> None:
        self._shutdown = True
        if self._socket is not None:
            try:
                self._socket.close()
            except OSError:     # pragma: no cover - double close
                pass
            self._socket = None

    # -- request handling -----------------------------------------------------------

    def _handle(self, connection: socket.socket) -> None:
        connection.settimeout(self.REQUEST_TIMEOUT)
        try:
            request = recv_message(connection)
        except (WireProtocolError, OSError):
            return      # garbage or impatient client: drop silently
        kind = request.get("type")
        if kind == MSG_RUN:
            self.tasks_served += 1
            self._reply(connection, self._run(request))
        elif kind == MSG_PING:
            self._reply(connection, {"type": MSG_PONG,
                                     "tasks_served": self.tasks_served})
        elif kind == MSG_SHUTDOWN:
            self._reply(connection, {"type": MSG_OK})
            self._shutdown = True
        else:
            self._reply(connection, error_reply(
                BackendError(f"unknown request type {kind!r}")))

    def _run(self, request: dict) -> dict:
        # Imported lazily so a worker process only pays for the
        # simulator once it actually receives work.
        from .backends import _execute_to_dict
        try:
            document = request["experiment"]
            if not isinstance(document, dict):
                raise BackendError("run request carries no experiment dict")
            return result_reply(_execute_to_dict(document))
        except Exception as error:      # noqa: BLE001 - survive any task
            return error_reply(error)

    @staticmethod
    def _reply(connection: socket.socket, message: dict) -> None:
        try:
            send_message(connection, message)
        except (WireProtocolError, OSError):
            pass        # client went away: the dispatcher will retry


def serve(host: str = "127.0.0.1", port: int = 0, *,
          max_tasks: Optional[int] = None,
          announce: Optional[Callable[[str], None]] = None) -> int:
    """Run a worker server in this process until shutdown.

    Returns the number of tasks served. ``announce`` (if given)
    receives a single ``"host:port"`` string once the socket is bound
    — the CLI prints it so scripts can scrape the ephemeral port.
    """
    server = WorkerServer(host, port, max_tasks=max_tasks)
    bound_port = server.bind()
    if announce is not None:
        announce(f"{server.host}:{bound_port}")
    try:
        server.serve_forever()
    except KeyboardInterrupt:   # pragma: no cover - interactive only
        pass
    finally:
        server.close()
    return server.tasks_served


# ---------------------------------------------------------------------------
# Local worker pools
# ---------------------------------------------------------------------------

def _local_worker_main(channel, host: str,
                       max_tasks: Optional[int]) -> None:
    """Child-process entry: bind, report the port, then serve."""
    server = WorkerServer(host, 0, max_tasks=max_tasks)
    try:
        port = server.bind()
    except OSError as error:    # pragma: no cover - bind races are rare
        channel.send(("error", str(error)))
        channel.close()
        return
    channel.send(("port", port))
    channel.close()
    server.serve_forever()


class LocalWorker:
    """Handle on one forked local worker process."""

    def __init__(self, process: multiprocessing.process.BaseProcess,
                 address: Tuple[str, int]) -> None:
        self.process = process
        self.address = address

    @property
    def endpoint(self) -> str:
        return f"{self.address[0]}:{self.address[1]}"

    def is_alive(self) -> bool:
        return self.process.is_alive()

    def terminate(self, timeout: float = 5.0) -> None:
        """Kill the worker process (SIGTERM) and reap it."""
        if self.process.is_alive():
            self.process.terminate()
        self.process.join(timeout)


def spawn_local_workers(count: int, *, host: str = "127.0.0.1",
                        max_tasks: Optional[int] = None,
                        start_timeout: float = 30.0) -> List[LocalWorker]:
    """Fork ``count`` worker processes on this machine.

    Prefers the ``fork`` start method (workers inherit any
    test-registered workload kinds); falls back to the platform
    default elsewhere. Each returned :class:`LocalWorker` is already
    bound and accepting connections.
    """
    if count < 1:
        raise BackendError(f"worker count must be >= 1, got {count}")
    methods = multiprocessing.get_all_start_methods()
    context = multiprocessing.get_context(
        "fork" if "fork" in methods else None)
    workers: List[LocalWorker] = []
    try:
        for _ in range(count):
            parent_channel, child_channel = context.Pipe()
            process = context.Process(target=_local_worker_main,
                                      args=(child_channel, host, max_tasks),
                                      daemon=True)
            process.start()
            child_channel.close()
            if not parent_channel.poll(start_timeout):
                raise BackendError("local worker did not report a port "
                                   f"within {start_timeout:g}s")
            kind, value = parent_channel.recv()
            parent_channel.close()
            if kind != "port":
                raise BackendError(f"local worker failed to bind: {value}")
            workers.append(LocalWorker(process, (host, int(value))))
    except BaseException:
        for worker in workers:
            worker.terminate()
        raise
    return workers


@contextlib.contextmanager
def local_worker_pool(count: int, *, host: str = "127.0.0.1",
                      max_tasks: Optional[int] = None,
                      ) -> Iterator[List[LocalWorker]]:
    """``with local_worker_pool(2) as workers:`` — spawn and clean up."""
    workers = spawn_local_workers(count, host=host, max_tasks=max_tasks)
    try:
        yield workers
    finally:
        for worker in workers:
            worker.terminate()


def worker_addresses(workers: Sequence[LocalWorker]) -> List[Tuple[str, int]]:
    """The ``(host, port)`` endpoints of a local pool, dispatcher-ready."""
    return [worker.address for worker in workers]
