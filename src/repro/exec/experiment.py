"""The :class:`Experiment` spec: one simulation run as a frozen value.

An experiment fully describes a run — workload kind plus parameters,
the :class:`~repro.config.SystemConfig`, the shred policy and a seed —
and nothing about *how* it is executed. Because the description is a
frozen, hashable value with a stable content hash, experiments can be
deduplicated within a batch, shipped to worker processes, and used as
keys into the persistent result cache.

The ``name`` field is presentation only: it labels reports but is
excluded from equality and the content hash, so ``GCC-baseline`` run
from the CLI and the same configuration run from a figure builder share
one cache entry.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from ..config import SystemConfig, bench_config, config_digest
from ..core.policies import make_policy
from ..errors import ExperimentError

#: Parameter values must be JSON scalars so hashes are canonical.
_SCALAR_TYPES = (str, int, float, bool, type(None))

Params = Union[Mapping[str, Any], Tuple[Tuple[str, Any], ...]]


def _normalise_params(params: Params) -> Tuple[Tuple[str, Any], ...]:
    if isinstance(params, Mapping):
        items = params.items()
    else:
        items = tuple(params)
    normalised = []
    for key, value in sorted(items):
        if not isinstance(key, str):
            raise ExperimentError(f"parameter names must be strings, got {key!r}")
        if not isinstance(value, _SCALAR_TYPES):
            raise ExperimentError(
                f"parameter {key!r} must be a JSON scalar "
                f"(str/int/float/bool/None), got {type(value).__name__}")
        normalised.append((key, value))
    return tuple(normalised)


@dataclass(frozen=True)
class Experiment:
    """A frozen, hashable description of one simulation run.

    ``workload`` names an executor registered in
    :mod:`repro.exec.workloads`; ``params`` are its keyword arguments
    (JSON scalars only). ``config`` defaults to :func:`bench_config`.
    """

    workload: str
    params: Params = ()
    config: Optional[SystemConfig] = None
    shredder: bool = True
    policy: Optional[str] = None
    seed: int = 0
    #: Access-stream engine driving the run: ``"scalar"`` (default, the
    #: per-access API), ``"batch"`` (the epoch-batched engine) or
    #: ``"vector"`` / ``"vector:numpy"`` / ``"vector:py"`` (the batch
    #: engine with a flat-array kernel backend). Only engine-aware
    #: workloads accept non-scalar engines.
    engine: str = "scalar"
    name: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", _normalise_params(self.params))
        if self.config is None:
            object.__setattr__(self, "config", bench_config())
        if self.policy is not None:
            make_policy(self.policy)    # validate the name eagerly
        from ..sim.batch import parse_engine_spec
        parse_engine_spec(self.engine)  # raises ExperimentError if unknown

    # -- parameter access ---------------------------------------------------------

    @property
    def param_dict(self) -> Dict[str, Any]:
        return dict(self.params)

    def param(self, key: str, default: Any = None) -> Any:
        return self.param_dict.get(key, default)

    # -- identity -----------------------------------------------------------------

    def content_hash(self) -> str:
        """Stable SHA-256 identifying this experiment's *content*.

        Identical across processes and interpreter runs (unlike
        ``hash()``); ignores ``name``.
        """
        document = {
            "workload": self.workload,
            "params": list(self.params),
            "config": config_digest(self.config),
            "shredder": self.shredder,
            "policy": self.policy,
            "seed": self.seed,
        }
        # Included only when non-default so every pre-engine cache entry
        # keeps its hash (the scalar engine is the behaviour those
        # entries were produced under).
        if self.engine != "scalar":
            document["engine"] = self.engine
        payload = json.dumps(document, sort_keys=True,
                             separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    # -- serialization ------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form that round-trips through :meth:`from_dict`."""
        from ..serialization import config_to_dict
        return {
            "workload": self.workload,
            "params": {key: value for key, value in self.params},
            "config": config_to_dict(self.config),
            "shredder": self.shredder,
            "policy": self.policy,
            "seed": self.seed,
            "engine": self.engine,
            "name": self.name,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Experiment":
        from ..serialization import config_from_dict
        try:
            return cls(workload=data["workload"],
                       params=data.get("params") or {},
                       config=config_from_dict(data["config"]),
                       shredder=bool(data.get("shredder", True)),
                       policy=data.get("policy"),
                       seed=int(data.get("seed", 0)),
                       engine=data.get("engine", "scalar"),
                       name=data.get("name", ""))
        except KeyError as error:
            raise ExperimentError(f"malformed experiment document: missing {error}")

    # -- derived variants ---------------------------------------------------------

    def with_updates(self, **changes: Any) -> "Experiment":
        """A copy with dataclass fields replaced (params may be a dict)."""
        return replace(self, **changes)

    def baseline_variant(self, zeroing: str = "nontemporal") -> "Experiment":
        """The paper's baseline: secure controller, kernel zeroing."""
        return replace(self, config=self.config.with_zeroing(zeroing),
                       shredder=False,
                       name=f"{self.name or self.workload}-baseline")

    def shredder_variant(self) -> "Experiment":
        """The same machine with the shred command replacing zeroing."""
        return replace(self, config=self.config.with_zeroing("shred"),
                       shredder=True,
                       name=f"{self.name or self.workload}-shredder")


def experiment_pair(experiment: Experiment) -> Tuple[Experiment, Experiment]:
    """The (baseline, shredder) variants every figure comparison runs."""
    return experiment.baseline_variant(), experiment.shredder_variant()


# ---------------------------------------------------------------------------
# Factories for the paper's workloads
# ---------------------------------------------------------------------------

def spec_experiment(benchmark: str, *, cores: int = 2, scale: float = 1.0,
                    config: Optional[SystemConfig] = None,
                    **extra: Any) -> Experiment:
    """A multi-programmed SPEC CPU2006 run (one instance per core)."""
    return Experiment(workload="spec",
                      params={"benchmark": benchmark, "cores": cores,
                              "scale": scale},
                      config=config, name=benchmark, **extra)


def powergraph_experiment(app: str, *, num_nodes: int = 5000,
                          config: Optional[SystemConfig] = None,
                          **extra: Any) -> Experiment:
    """A PowerGraph application over a synthetic power-law graph."""
    return Experiment(workload="powergraph",
                      params={"app": app, "num_nodes": num_nodes},
                      config=config, name=app, **extra)
