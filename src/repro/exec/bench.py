"""``repro bench``: the toolchain's performance trajectory harness.

Runs named scenarios — deterministic access streams driven through the
scalar, batch and vector engines over fresh systems — and records two
strictly separated kinds of output per scenario:

* **deterministic** facts: a canonical SHA-256 digest of the final
  :class:`~repro.sim.system.SystemReport` per engine (they must agree —
  the engine equivalence contract, re-checked on every bench run), plus
  each engine's :class:`~repro.sim.batch.EngineResult` totals.
  Identical on every host and every run — including hosts without
  numpy, where the ``vector`` engine resolves to its pure-Python
  kernel: the kernel backend never enters the deterministic section.
* **wall-clock** measurements: per-repeat run times, best/mean, and the
  batch/vector-over-scalar speedups, under ``timing``; per-phase
  :mod:`repro.obs` span records under ``spans``; host facts (including
  which vector kernel actually ran) under ``meta``. These vary run to
  run and are excluded from determinism comparisons.

Results land in ``BENCH_<scenario>.json`` at the repo root.
``compare_results`` gates a fresh run against a committed baseline:
any deterministic divergence fails outright; wall-clock regressions
fail when an engine got more than ``threshold`` (fractional) slower.

``run_scenario(..., profile_dir=...)`` additionally runs each engine
once under :mod:`cProfile` and dumps per-engine ``.pstats`` files —
the profiled run is separate from the measured repeats so profiler
overhead never pollutes the recorded timings.

Wall-clock reads live here — the exec layer — deliberately: the
determinism pass (REPRO101) bans them from ``repro.sim`` and below.
"""

from __future__ import annotations

import cProfile
import hashlib
import json
import platform
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from ..config import SystemConfig, bench_config, fast_config
from ..errors import ExperimentError
from ..obs.registry import MetricsRegistry
from ..obs.spans import SpanTracer
from ..sim import AccessBatch, OP_READ, OP_SHRED, OP_WRITE, System
from ..sim.kernels import resolve_kernel
from ..workloads import SPEC_BENCHMARKS, spec_access_batch

#: Bump when the BENCH_*.json layout changes incompatibly.
SCHEMA_VERSION = 2

#: Keys of the result document that carry wall-clock (non-deterministic)
#: data; everything else must be identical across runs and hosts.
WALL_CLOCK_KEYS = ("timing", "spans", "meta")


@dataclass(frozen=True)
class BenchScenario:
    """One named benchmark: a stream, a config, and engines to race.

    ``num_cores`` switches the ``synthetic`` source onto the hierarchy
    datapath (the batch gains a cores array); ``burst`` adds back-to-
    back block reuse there. Two structured sources exercise the bulk
    walk's extremes: ``llc-sweep`` shreds ``pages`` pages then reads
    every block of them sequentially ``sweeps`` times (``burst``
    repeats per block) — every block misses the LLC and zero-fills;
    ``pingpong`` makes cores 0/1 alternate stores to the same lines
    while cores 2/3 read them — the coherence slow path on every head.
    """

    name: str
    description: str
    config: str = "bench"              # "bench" (timing-only) | "fast"
    source: str = "synthetic"          # "llc-sweep" | "pingpong" | SPEC name
    accesses: int = 20000
    pages: int = 64
    read_fraction: float = 0.7
    locality: float = 0.85
    shred_fraction: float = 0.0
    epoch_length: int = 256
    seed: int = 1234
    scale: float = 1.0                 # SPEC source scaling
    shredder: bool = True
    num_cores: Optional[int] = None    # hierarchy datapath when set
    burst: int = 1                     # back-to-back reuse per block
    sweeps: int = 2                    # passes for the structured sources
    engines: Tuple[str, ...] = ("scalar", "batch", "vector")

    def make_config(self) -> SystemConfig:
        if self.config == "bench":
            return bench_config()
        if self.config == "fast":
            return fast_config()
        raise ExperimentError(f"scenario {self.name}: unknown config kind "
                              f"{self.config!r}")

    def build_batch(self, config: SystemConfig) -> AccessBatch:
        page_size = config.kernel.page_size
        block_size = config.block_size
        if self.source == "synthetic":
            return AccessBatch.synthetic(
                self.accesses, num_pages=self.pages,
                page_size=page_size, block_size=block_size,
                read_fraction=self.read_fraction,
                shred_fraction=self.shred_fraction,
                locality=self.locality, epoch_length=self.epoch_length,
                seed=self.seed, num_cores=self.num_cores, burst=self.burst)
        if self.source == "llc-sweep":
            trace = [(page * page_size, OP_SHRED)
                     for page in range(self.pages)]
            blocks = self.pages * (page_size // block_size)
            for _ in range(self.sweeps):
                for block in range(blocks):
                    trace.extend([(block * block_size, OP_READ)] * self.burst)
            return AccessBatch.from_trace(trace,
                                          epoch_length=self.epoch_length,
                                          cores=[0] * len(trace))
        if self.source == "pingpong":
            blocks_per_page = min(16, page_size // block_size)
            trace: List[Tuple[int, int]] = []
            cores: List[int] = []
            for _ in range(self.sweeps):
                for page in range(self.pages):
                    for block in range(blocks_per_page):
                        address = page * page_size + block * block_size
                        for core in (0, 1):
                            trace.append((address, OP_WRITE))
                            cores.append(core)
                        for core in (2, 3):
                            trace.append((address, OP_READ))
                            cores.append(core)
            return AccessBatch.from_trace(trace,
                                          epoch_length=self.epoch_length,
                                          cores=cores)
        if self.source in SPEC_BENCHMARKS:
            spec = SPEC_BENCHMARKS[self.source]
            if self.scale != 1.0:
                spec = spec.scaled(self.scale)
            return spec_access_batch(spec,
                                     page_size=page_size,
                                     block_size=block_size,
                                     epoch_length=self.epoch_length)
        raise ExperimentError(f"scenario {self.name}: source "
                              f"{self.source!r} is not 'synthetic', "
                              "'llc-sweep', 'pingpong' or a SPEC "
                              "benchmark name")

    def params(self) -> Dict[str, Any]:
        return {k: v for k, v in self.__dict__.items()
                if k not in ("name", "description", "engines")}


#: The named scenarios ``repro bench`` knows out of the box. Built in
#: one assignment (never mutated) so the catalog is safe to read from
#: any backend thread without locking.
SCENARIOS: Dict[str, BenchScenario] = {scenario.name: scenario for scenario in (
    BenchScenario(
        name="smoke",
        description="Small mixed stream; the CI gate scenario.",
        accesses=20000, pages=64, read_fraction=0.7, locality=0.85),
    BenchScenario(
        name="counter-hot",
        description="Hierarchy-through multicore stream with bursty "
                    "block reuse over a private-cache-sized footprint: "
                    "long L1-hit runs, the bulk walk's best case (the "
                    "few LLC misses stay counter-cache hits).",
        accesses=40000, pages=12, read_fraction=0.7, locality=0.95,
        epoch_length=512, num_cores=4, burst=6),
    BenchScenario(
        name="llc-thrash",
        description="Shred-then-sweep: sequential reads over 2x the L4 "
                    "capacity, every block re-read within its line; all "
                    "LLC misses zero-fill from shredded pages (Silent "
                    "Shredder's free reads).",
        source="llc-sweep", pages=256, burst=8, sweeps=2,
        epoch_length=4096, num_cores=1, accesses=0),
    BenchScenario(
        name="coherence-pingpong",
        description="Cores 0/1 alternate stores to the same lines while "
                    "cores 2/3 read them: ownership bounces on every "
                    "access, the bulk walk's coherence slow path.",
        source="pingpong", pages=8, sweeps=40, epoch_length=2048,
        num_cores=4, accesses=0),
    BenchScenario(
        name="counter-cold",
        description="Low-locality stream over 4x the counter-cache "
                    "reach: miss-dominated, minimal probe elision.",
        accesses=30000, pages=4096, read_fraction=0.7, locality=0.1),
    BenchScenario(
        name="write-burst",
        description="Write-back storm with periodic shreds (allocation "
                    "churn shape).",
        accesses=40000, pages=48, read_fraction=0.05, locality=0.95,
        shred_fraction=0.002),
    BenchScenario(
        name="spec-init",
        description="GCC init-phase accesses replayed through the "
                    "engines.",
        source="GCC", scale=0.5, accesses=0),
    BenchScenario(
        name="functional-crypto",
        description="Functional run with real payloads: grouped pad "
                    "generation on the read path.",
        config="fast", accesses=15000, pages=32, read_fraction=0.6,
        locality=0.9),
)}


def scenario_names() -> List[str]:
    return sorted(SCENARIOS)


def _report_digest(report_dict: Dict[str, Any]) -> str:
    payload = json.dumps(report_dict, sort_keys=True,
                         separators=(",", ":"), default=str)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _run_once(scenario: BenchScenario, engine: str,
              batch: AccessBatch) -> Tuple[float, Any, Dict[str, Any]]:
    """One fresh-system run: returns (seconds, EngineResult, report dict)."""
    system = System(scenario.make_config(), shredder=scenario.shredder,
                    name=f"bench:{scenario.name}", engine=engine)
    runner = system.access_engine()
    start = time.perf_counter()
    result = runner.run(batch)
    elapsed = time.perf_counter() - start
    return elapsed, result, system.report().to_dict()


def run_scenario(name: str, *, warmup: int = 1, repeat: int = 3,
                 tracer: Optional[SpanTracer] = None,
                 profile_dir: Optional[Path] = None,
                 metrics: Optional[MetricsRegistry] = None) -> Dict[str, Any]:
    """Run one scenario and return its result document.

    ``profile_dir`` dumps one extra cProfile'd run per engine to
    ``<profile_dir>/<scenario>.<engine>.pstats`` (measured timings are
    never taken under the profiler). ``metrics`` receives the
    ``cache.bulk.*`` counters of the bulk hierarchy walk, published
    once per scenario — batch and vector produce identical counters
    under the equivalence contract, so the registry stays
    engine-agnostic.
    """
    scenario = SCENARIOS.get(name)
    if scenario is None:
        raise ExperimentError(f"unknown bench scenario {name!r}; choose "
                              f"from {scenario_names()}")
    if repeat < 1:
        raise ExperimentError("repeat must be >= 1")
    tracer = tracer if tracer is not None else SpanTracer()

    with tracer.span(f"bench.{name}") as root:
        with tracer.span("build-batch"):
            batch = scenario.build_batch(scenario.make_config())
        root.attrs["accesses"] = len(batch)

        deterministic_engines: Dict[str, Any] = {}
        timing: Dict[str, Any] = {}
        digests: Dict[str, str] = {}
        profiles: Dict[str, str] = {}
        for engine in scenario.engines:
            with tracer.span(f"warmup.{engine}", {"runs": warmup}):
                for _ in range(warmup):
                    _run_once(scenario, engine, batch)
            runs: List[float] = []
            with tracer.span(f"measure.{engine}", {"runs": repeat}):
                for _ in range(repeat):
                    elapsed, result, report_dict = _run_once(
                        scenario, engine, batch)
                    runs.append(elapsed)
            digests[engine] = _report_digest(report_dict)
            deterministic_engines[engine] = result.as_dict()
            timing[engine] = {
                "runs_s": runs,
                "best_s": min(runs),
                "mean_s": sum(runs) / len(runs),
            }
            if profile_dir is not None:
                directory = Path(profile_dir)
                directory.mkdir(parents=True, exist_ok=True)
                stem = engine.replace(":", "-")
                path = directory / f"{scenario.name}.{stem}.pstats"
                profiler = cProfile.Profile()
                with tracer.span(f"profile.{engine}"):
                    profiler.enable()
                    _run_once(scenario, engine, batch)
                    profiler.disable()
                profiler.dump_stats(str(path))
                profiles[engine] = str(path)

    reports_identical = len(set(digests.values())) <= 1
    if "scalar" in timing and "batch" in timing:
        timing["speedup_batch_over_scalar"] = (
            timing["scalar"]["best_s"] / timing["batch"]["best_s"])
    if "scalar" in timing and "vector" in timing:
        timing["speedup_vector_over_scalar"] = (
            timing["scalar"]["best_s"] / timing["vector"]["best_s"])

    if metrics is not None:
        bulk = next((entry.get("bulk") for entry in
                     deterministic_engines.values() if entry.get("bulk")),
                    None)
        if bulk:
            for key in sorted(bulk):
                if bulk[key]:
                    metrics.counter(f"cache.bulk.{key}", unit="ops").inc(
                        bulk[key])

    meta = {
        "python": platform.python_version(),
        "platform": platform.system(),
        "warmup": warmup,
        "repeat": repeat,
        "generated_by": "repro bench",
    }
    if any(engine.startswith("vector") for engine in scenario.engines):
        # Which backend "vector" resolved to on THIS host — wall-clock
        # metadata only; the deterministic section must stay identical
        # with and without numpy.
        meta["vector_kernel"] = resolve_kernel("auto").name
    if profiles:
        meta["profiles"] = profiles

    return {
        "schema": SCHEMA_VERSION,
        "scenario": scenario.name,
        "description": scenario.description,
        "params": scenario.params(),
        "engines": list(scenario.engines),
        "deterministic": {
            "reports_identical": reports_identical,
            "report_digest": digests.get(scenario.engines[0]),
            "report_digests": digests,
            "engines": deterministic_engines,
        },
        "timing": timing,
        "spans": tracer.snapshot(),
        "meta": meta,
    }


def result_path(name: str, directory: Optional[Path] = None) -> Path:
    base = Path(directory) if directory is not None else Path.cwd()
    return base / f"BENCH_{name}.json"


def write_result(result: Dict[str, Any],
                 directory: Optional[Path] = None) -> Path:
    path = result_path(result["scenario"], directory)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path


def deterministic_view(result: Dict[str, Any]) -> Dict[str, Any]:
    """The document minus its wall-clock keys (what must reproduce)."""
    return {k: v for k, v in result.items() if k not in WALL_CLOCK_KEYS}


def compare_results(current: Dict[str, Any], baseline: Dict[str, Any], *,
                    threshold: float = 0.5) -> List[str]:
    """Gate ``current`` against ``baseline``; returns failure messages.

    Deterministic divergence (schema, scenario identity, report digests,
    engine totals) always fails. Wall-clock timings fail only when an
    engine ran more than ``threshold`` (fractional, e.g. ``0.5`` = 50 %)
    slower than the baseline's best time.
    """
    failures: List[str] = []
    for key in ("schema", "scenario"):
        if current.get(key) != baseline.get(key):
            failures.append(f"{key} mismatch: current {current.get(key)!r} "
                            f"vs baseline {baseline.get(key)!r}")
            return failures
    cur_det = deterministic_view(current)
    base_det = deterministic_view(baseline)
    if cur_det != base_det:
        diverged = sorted(k for k in set(cur_det) | set(base_det)
                          if cur_det.get(k) != base_det.get(k))
        failures.append("deterministic sections diverge in: "
                        + ", ".join(diverged))
    if not current.get("deterministic", {}).get("reports_identical", False):
        failures.append("engine reports are not identical in the current "
                        "run (equivalence contract broken)")
    base_timing = baseline.get("timing", {})
    cur_timing = current.get("timing", {})
    for engine, base_entry in base_timing.items():
        if not isinstance(base_entry, dict):
            continue
        cur_entry = cur_timing.get(engine)
        if not isinstance(cur_entry, dict):
            failures.append(f"engine {engine!r} timed in baseline but "
                            "missing from current run")
            continue
        allowed = base_entry["best_s"] * (1.0 + threshold)
        if cur_entry["best_s"] > allowed:
            failures.append(
                f"{engine} regressed: best {cur_entry['best_s']:.4f}s vs "
                f"baseline {base_entry['best_s']:.4f}s "
                f"(>{threshold:.0%} over)")
    return failures


def load_result(path: Path) -> Dict[str, Any]:
    try:
        return json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        raise ExperimentError(f"cannot load bench result {path}: {error}")
