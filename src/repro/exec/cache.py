"""Persistent, content-addressed cache of experiment results.

Each entry is one JSON file named after the cache key — the SHA-256 of
the experiment's content hash combined with a *code version salt* — so
re-running an unchanged experiment against unchanged simulator code is
a file read, while any change to the experiment spec or to the
``repro`` sources silently invalidates every stale entry (the key
simply never matches again).

Layout, in priority order:

* an explicit ``directory`` argument,
* ``$REPRO_CACHE_DIR``,
* a repo-local ``.repro-cache/`` when the working directory looks like
  a checkout (has ``pyproject.toml`` or ``.git``),
* ``$XDG_CACHE_HOME/repro`` (default ``~/.cache/repro``).

Corrupted entries (truncated writes, malformed JSON, foreign files) are
treated as misses and deleted; they never crash a run. Writes are
atomic (tempfile + ``os.replace``) so parallel runners can share one
directory.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, Optional, Union

from ..sim.system import SystemReport
from .experiment import Experiment

_FORMAT = 1

_salt_cache: Optional[str] = None


def code_version_salt() -> str:
    """A digest of the installed ``repro`` sources (plus version).

    Any edit to the simulator's Python files changes the salt, so cached
    results can never outlive the code that produced them. Computed once
    per process.
    """
    global _salt_cache
    if _salt_cache is None:
        from .. import __version__  # repro: suppress REPRO203 -- salt needs the package version
        digest = hashlib.sha256(__version__.encode("utf-8"))
        package_root = Path(__file__).resolve().parent.parent
        try:
            sources = sorted(package_root.rglob("*.py"))
            for source in sources:
                digest.update(str(source.relative_to(package_root)).encode())
                digest.update(source.read_bytes())
        except OSError:
            pass    # unreadable tree: fall back to the version alone
        _salt_cache = digest.hexdigest()
    return _salt_cache


def default_cache_dir() -> Path:
    """Resolve the cache directory from the environment (see module doc)."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    cwd = Path.cwd()
    if (cwd / "pyproject.toml").exists() or (cwd / ".git").exists():
        return cwd / ".repro-cache"
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro"


@dataclass
class SweepResult:
    """Outcome of one :meth:`ResultCache.sweep` pass."""

    examined: int = 0
    removed: int = 0
    kept: int = 0
    bytes_removed: int = 0
    bytes_kept: int = 0

    def describe(self) -> str:
        return (f"swept {self.removed} of {self.examined} entries "
                f"({self.bytes_removed} bytes freed, "
                f"{self.kept} entries / {self.bytes_kept} bytes kept)")


@dataclass
class CacheStats:
    """Hit/miss accounting for one :class:`ResultCache` instance."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt_entries: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits


class ResultCache:
    """Two-layer (memory + disk) content-addressed result store."""

    def __init__(self, directory: Optional[Union[str, Path]] = None, *,
                 salt: Optional[str] = None) -> None:
        self.directory = Path(directory) if directory is not None \
            else default_cache_dir()
        self.salt = salt if salt is not None else code_version_salt()
        self.stats = CacheStats()
        self._memory: Dict[str, SystemReport] = {}

    def bind_metrics(self, registry, *, prefix: str = "exec.cache") -> None:
        """Mirror this cache's :class:`CacheStats` into a
        :class:`~repro.obs.MetricsRegistry` under ``prefix``.

        Registered as a pull collector, so the counters are current at
        every ``registry.snapshot()`` without touching the lookup hot
        path. ``CacheStats`` stays the source of truth.
        """
        stats = self.stats

        def _collect() -> None:
            for name, value in (
                    ("memory_hits", stats.memory_hits),
                    ("disk_hits", stats.disk_hits),
                    ("hits", stats.hits),
                    ("misses", stats.misses),
                    ("stores", stats.stores),
                    ("corrupt_entries", stats.corrupt_entries),
            ):
                registry.counter(
                    f"{prefix}.{name}",  # repro: suppress REPRO402 -- prefix is caller-checked
                    unit="ops").set_total(value)

        registry.register_collector(_collect)

    # -- keys ---------------------------------------------------------------------

    def key(self, experiment: Experiment) -> str:
        """Cache key: experiment content hash salted by the code version."""
        payload = f"{experiment.content_hash()}:{self.salt}"
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def path(self, experiment: Experiment) -> Path:
        return self.directory / f"{self.key(experiment)}.json"

    # -- lookup / store -----------------------------------------------------------

    def get(self, experiment: Experiment) -> Optional[SystemReport]:
        """The cached report, or ``None`` on miss (or corrupt entry)."""
        key = self.key(experiment)
        if key in self._memory:
            self.stats.memory_hits += 1
            return self._memory[key]
        path = self.directory / f"{key}.json"
        try:
            document = json.loads(path.read_text())
            if document.get("format") != _FORMAT:
                raise ValueError(f"unsupported cache format "
                                 f"{document.get('format')!r}")
            report = SystemReport.from_dict(document["result"])
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError):
            # Malformed entry: drop it and fall back to re-running.
            self.stats.corrupt_entries += 1
            self.stats.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.stats.disk_hits += 1
        self._memory[key] = report
        return report

    def put(self, experiment: Experiment, report: SystemReport) -> None:
        """Store a result in both layers (atomic on disk)."""
        key = self.key(experiment)
        self._memory[key] = report
        self.directory.mkdir(parents=True, exist_ok=True)
        document = {
            "format": _FORMAT,
            "salt": self.salt,
            "experiment": experiment.to_dict(),
            "result": report.to_dict(),
        }
        handle, temp_path = tempfile.mkstemp(dir=str(self.directory),
                                             suffix=".tmp")
        try:
            with os.fdopen(handle, "w") as stream:
                json.dump(document, stream, sort_keys=True)
            os.replace(temp_path, self.directory / f"{key}.json")
        except OSError:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise
        self.stats.stores += 1

    # -- invalidation -------------------------------------------------------------

    def invalidate(self, experiment: Optional[Experiment] = None) -> None:
        """Drop one experiment's entry, or every entry when ``None``."""
        if experiment is None:
            self.clear()
            return
        self._memory.pop(self.key(experiment), None)
        try:
            self.path(experiment).unlink()
        except OSError:
            pass

    def clear(self) -> None:
        """Remove every entry from both layers."""
        self.clear_memory()
        for path in self._entry_paths():
            try:
                path.unlink()
            except OSError:
                pass

    def clear_memory(self) -> None:
        """Drop the in-process layer only (disk entries survive)."""
        self._memory.clear()

    def sweep(self, *, max_bytes: Optional[int] = None,
              max_age_days: Optional[float] = None,
              now: Optional[float] = None) -> SweepResult:
        """LRU eviction: bound the on-disk store by size and/or age.

        Entries are ranked by file mtime (a disk hit is not a touch —
        mtime tracks *production* time, which for deterministic
        experiment results is the honest recency signal). Newest
        entries are kept while the running total stays within
        ``max_bytes`` and the entry is younger than ``max_age_days``;
        everything older/larger is deleted from both layers. With no
        bounds given the sweep only reports sizes.

        Returns a :class:`SweepResult`; racing deletions by concurrent
        runners are tolerated.
        """
        import time as _time
        reference = _time.time() if now is None else float(now)
        cutoff = None if max_age_days is None \
            else reference - float(max_age_days) * 86400.0
        entries = []
        for path in self._entry_paths():
            try:
                stat = path.stat()
            except OSError:
                continue        # raced with another process: skip
            entries.append((stat.st_mtime, stat.st_size, path))
        entries.sort(key=lambda entry: entry[0], reverse=True)

        result = SweepResult(examined=len(entries))
        kept_bytes = 0
        for mtime, size, path in entries:
            keep = True
            if cutoff is not None and mtime < cutoff:
                keep = False
            if max_bytes is not None and kept_bytes + size > max_bytes:
                keep = False
            if keep:
                kept_bytes += size
                result.kept += 1
                continue
            try:
                path.unlink()
            except OSError:
                continue        # already gone: someone else swept it
            self._memory.pop(path.stem, None)
            result.removed += 1
            result.bytes_removed += size
        result.bytes_kept = kept_bytes
        return result

    # -- introspection ------------------------------------------------------------

    def _entry_paths(self) -> Iterator[Path]:
        if not self.directory.is_dir():
            return iter(())
        return iter(sorted(self.directory.glob("*.json")))

    def __len__(self) -> int:
        return sum(1 for _ in self._entry_paths())

    def __contains__(self, experiment: Experiment) -> bool:
        return (self.key(experiment) in self._memory
                or self.path(experiment).exists())


_default_cache: Optional[ResultCache] = None


def default_cache() -> ResultCache:
    """The process-wide shared cache (re-resolved if the target
    directory changes, e.g. when ``$REPRO_CACHE_DIR`` is updated)."""
    global _default_cache
    directory = default_cache_dir()
    if _default_cache is None or _default_cache.directory != directory:
        _default_cache = ResultCache(directory)
    return _default_cache
