"""Workload executors: turn an :class:`Experiment` into a run.

Each executor is a plain function registered under the experiment's
``workload`` kind. It receives a freshly built
:class:`~repro.sim.system.System` and the experiment's parameter dict,
drives the simulation, and may return a dict of extra metrics that the
runner merges into the resulting report's ``extra`` map. Executors are
module-level functions (never closures) so experiments stay picklable
and runs behave identically in worker processes.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, List, Optional

from ..core.policies import make_policy
from ..errors import ExperimentError
from ..sim import AccessBatch, System
from ..sim.system import SystemReport
from ..workloads import (SPEC_BENCHMARKS, multiprogrammed_tasks,
                         powergraph_task, spec_access_batch)
from .experiment import Experiment

#: executor(system, params) -> optional extra metrics for the report
ExecutorFn = Callable[[System, Dict[str, Any]], Optional[Dict[str, float]]]

_EXECUTORS: Dict[str, ExecutorFn] = {}
#: Kinds whose executor honours ``System.engine`` (drives the access
#: stream through ``system.access_engine()`` instead of hard-coding the
#: scalar per-access calls). Only these accept ``engine="batch"``.
_ENGINE_AWARE: Dict[str, bool] = {}
#: Registration can race backend dispatch threads resolving executors
#: (tests register custom kinds while a distributed batch is in
#: flight), so writes to the registry take this lock.
_EXECUTORS_LOCK = threading.Lock()


def register_workload(kind: str, *,
                      engine_aware: bool = False) -> Callable[[ExecutorFn],
                                                              ExecutorFn]:
    """Register an executor for ``Experiment(workload=kind, ...)``."""
    def decorate(fn: ExecutorFn) -> ExecutorFn:
        with _EXECUTORS_LOCK:
            _EXECUTORS[kind] = fn
            _ENGINE_AWARE[kind] = engine_aware
        return fn
    return decorate


def workload_kinds() -> List[str]:
    """The registered experiment workload kinds."""
    return sorted(_EXECUTORS)


def workload_is_engine_aware(kind: str) -> bool:
    """Whether a kind honours the experiment's ``engine`` selection."""
    return _ENGINE_AWARE.get(kind, False)


def execute_experiment(experiment: Experiment) -> SystemReport:
    """Run one experiment to completion and return its report."""
    executor = _EXECUTORS.get(experiment.workload)
    if executor is None:
        raise ExperimentError(
            f"unknown workload kind {experiment.workload!r}; "
            f"choose from {workload_kinds()}")
    if experiment.engine != "scalar" \
            and not workload_is_engine_aware(experiment.workload):
        raise ExperimentError(
            f"workload {experiment.workload!r} drives the per-access API "
            f"directly and cannot honour engine={experiment.engine!r}; "
            "only engine-aware workloads (e.g. 'access-stream') accept a "
            "non-scalar engine")
    policy = make_policy(experiment.policy) if experiment.policy else None
    system = System(experiment.config, shredder=experiment.shredder,
                    policy=policy,
                    name=experiment.name or experiment.workload,
                    engine=experiment.engine)
    extras = executor(system, experiment.param_dict) or {}
    report = system.report()
    report.extra.update(extras)
    return report


# ---------------------------------------------------------------------------
# The paper's workload kinds
# ---------------------------------------------------------------------------

@register_workload("spec")
def _run_spec(system: System, params: Dict[str, Any]) -> None:
    tasks = multiprogrammed_tasks(params["benchmark"],
                                  int(params.get("cores", 2)),
                                  scale=float(params.get("scale", 1.0)))
    system.run(tasks)
    system.machine.hierarchy.flush_all()


@register_workload("powergraph")
def _run_powergraph(system: System, params: Dict[str, Any]) -> None:
    task = powergraph_task(params["app"],
                           num_nodes=int(params.get("num_nodes", 5000)))
    system.run([task])
    system.machine.hierarchy.flush_all()


@register_workload("table2-zeroing")
def _run_table2_zeroing(system: System, params: Dict[str, Any]) -> Dict[str, float]:
    """First-touch a batch of pages so the configured zeroing mechanism
    clears each one; report its attributable costs (Table 2)."""
    pages = int(params.get("pages", 24))
    page_size = system.config.kernel.page_size
    ctx = system.new_context(0)
    base = ctx.malloc(pages * page_size)
    writes_before = system.machine.controller.stats.data_writes
    for page in range(pages):
        ctx.touch(base + page * page_size, write=True)
    zs = system.kernel.zeroing.stats
    # Temporal zeroing parks its zeros dirty in the caches; the flush
    # reveals the writes it merely deferred.
    system.machine.hierarchy.flush_all()
    total_writes = system.machine.controller.stats.data_writes - writes_before
    return {
        "table2_total_writes": float(total_writes),
        "zeroing_memory_reads": float(zs.memory_reads),
        "zeroing_cpu_busy_ns": float(zs.cpu_busy_ns),
        "zeroing_latency_ns": float(zs.latency_ns),
        "cache_blocks_polluted": float(zs.cache_blocks_polluted),
    }


@register_workload("policy-ablation")
def _run_policy_ablation(system: System, params: Dict[str, Any]) -> Dict[str, float]:
    """Repeatedly shred and rewrite pages under the experiment's shred
    policy, then probe whether reads come back zero (section 4.2)."""
    pages = int(params.get("pages", 8))
    shreds_per_page = int(params.get("shreds_per_page", 80))
    controller = system.machine.controller
    page_size = system.config.kernel.page_size
    for _ in range(shreds_per_page):
        for page in range(1, pages + 1):
            # Dirty one block then shred the page again (reuse).
            controller.store_block(page * page_size, None)
            system.machine.shred_register.write(page * page_size,
                                                kernel_mode=True)
    zero_reads = 0
    probes = 0
    for page in range(1, pages + 1):
        result = controller.fetch_block(page * page_size)
        probes += 1
        if result.zero_filled:
            zero_reads += 1
    return {
        "probes": float(probes),
        "zero_reads": float(zero_reads),
        "zero_read_fraction": zero_reads / probes,
    }


@register_workload("access-stream", engine_aware=True)
def _run_access_stream(system: System,
                       params: Dict[str, Any]) -> Dict[str, float]:
    """Drive a flat access stream through the configured engine.

    ``source="synthetic"`` (default) builds a parameterised synthetic
    batch; any SPEC benchmark name replays that model's init-phase
    accesses (:func:`repro.workloads.spec_access_batch`). The engine —
    scalar or batch — comes from the experiment via ``System.engine``.
    """
    source = str(params.get("source", "synthetic"))
    epoch_length = int(params.get("epoch_length", 256))
    if source == "synthetic":
        batch = AccessBatch.synthetic(
            int(params.get("accesses", 20000)),
            num_pages=int(params.get("pages", 64)),
            page_size=system.config.kernel.page_size,
            block_size=system.config.block_size,
            read_fraction=float(params.get("read_fraction", 0.7)),
            shred_fraction=float(params.get("shred_fraction", 0.0)),
            locality=float(params.get("locality", 0.85)),
            epoch_length=epoch_length,
            seed=int(params.get("seed", 1234)))
    elif source in SPEC_BENCHMARKS:
        spec = SPEC_BENCHMARKS[source]
        scale = float(params.get("scale", 1.0))
        if scale != 1.0:
            spec = spec.scaled(scale)
        batch = spec_access_batch(spec,
                                  page_size=system.config.kernel.page_size,
                                  block_size=system.config.block_size,
                                  epoch_length=epoch_length)
    else:
        raise ExperimentError(
            f"access-stream source {source!r} is neither 'synthetic' nor "
            "a SPEC benchmark name")
    result = system.access_engine().run(batch)
    # Engine-internal diagnostics (segments, bulk_hits) are deliberately
    # NOT reported: extras must be engine-agnostic so scalar and batch
    # runs of the same stream produce identical reports.
    return {
        "stream_accesses": float(result.accesses),
        "stream_reads": float(result.reads),
        "stream_writes": float(result.writes),
        "stream_shreds": float(result.shreds),
        "stream_epochs": float(result.epochs),
        "stream_latency_ns": result.total_latency_ns,
    }
