"""Workload executors: turn an :class:`Experiment` into a run.

Each executor is a plain function registered under the experiment's
``workload`` kind. It receives a freshly built
:class:`~repro.sim.system.System` and the experiment's parameter dict,
drives the simulation, and may return a dict of extra metrics that the
runner merges into the resulting report's ``extra`` map. Executors are
module-level functions (never closures) so experiments stay picklable
and runs behave identically in worker processes.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, List, Optional

from ..core.policies import make_policy
from ..errors import ExperimentError
from ..sim import System
from ..sim.system import SystemReport
from ..workloads import multiprogrammed_tasks, powergraph_task
from .experiment import Experiment

#: executor(system, params) -> optional extra metrics for the report
ExecutorFn = Callable[[System, Dict[str, Any]], Optional[Dict[str, float]]]

_EXECUTORS: Dict[str, ExecutorFn] = {}
#: Registration can race backend dispatch threads resolving executors
#: (tests register custom kinds while a distributed batch is in
#: flight), so writes to the registry take this lock.
_EXECUTORS_LOCK = threading.Lock()


def register_workload(kind: str) -> Callable[[ExecutorFn], ExecutorFn]:
    """Register an executor for ``Experiment(workload=kind, ...)``."""
    def decorate(fn: ExecutorFn) -> ExecutorFn:
        with _EXECUTORS_LOCK:
            _EXECUTORS[kind] = fn
        return fn
    return decorate


def workload_kinds() -> List[str]:
    """The registered experiment workload kinds."""
    return sorted(_EXECUTORS)


def execute_experiment(experiment: Experiment) -> SystemReport:
    """Run one experiment to completion and return its report."""
    executor = _EXECUTORS.get(experiment.workload)
    if executor is None:
        raise ExperimentError(
            f"unknown workload kind {experiment.workload!r}; "
            f"choose from {workload_kinds()}")
    policy = make_policy(experiment.policy) if experiment.policy else None
    system = System(experiment.config, shredder=experiment.shredder,
                    policy=policy,
                    name=experiment.name or experiment.workload)
    extras = executor(system, experiment.param_dict) or {}
    report = system.report()
    report.extra.update(extras)
    return report


# ---------------------------------------------------------------------------
# The paper's workload kinds
# ---------------------------------------------------------------------------

@register_workload("spec")
def _run_spec(system: System, params: Dict[str, Any]) -> None:
    tasks = multiprogrammed_tasks(params["benchmark"],
                                  int(params.get("cores", 2)),
                                  scale=float(params.get("scale", 1.0)))
    system.run(tasks)
    system.machine.hierarchy.flush_all()


@register_workload("powergraph")
def _run_powergraph(system: System, params: Dict[str, Any]) -> None:
    task = powergraph_task(params["app"],
                           num_nodes=int(params.get("num_nodes", 5000)))
    system.run([task])
    system.machine.hierarchy.flush_all()


@register_workload("table2-zeroing")
def _run_table2_zeroing(system: System, params: Dict[str, Any]) -> Dict[str, float]:
    """First-touch a batch of pages so the configured zeroing mechanism
    clears each one; report its attributable costs (Table 2)."""
    pages = int(params.get("pages", 24))
    page_size = system.config.kernel.page_size
    ctx = system.new_context(0)
    base = ctx.malloc(pages * page_size)
    writes_before = system.machine.controller.stats.data_writes
    for page in range(pages):
        ctx.touch(base + page * page_size, write=True)
    zs = system.kernel.zeroing.stats
    # Temporal zeroing parks its zeros dirty in the caches; the flush
    # reveals the writes it merely deferred.
    system.machine.hierarchy.flush_all()
    total_writes = system.machine.controller.stats.data_writes - writes_before
    return {
        "table2_total_writes": float(total_writes),
        "zeroing_memory_reads": float(zs.memory_reads),
        "zeroing_cpu_busy_ns": float(zs.cpu_busy_ns),
        "zeroing_latency_ns": float(zs.latency_ns),
        "cache_blocks_polluted": float(zs.cache_blocks_polluted),
    }


@register_workload("policy-ablation")
def _run_policy_ablation(system: System, params: Dict[str, Any]) -> Dict[str, float]:
    """Repeatedly shred and rewrite pages under the experiment's shred
    policy, then probe whether reads come back zero (section 4.2)."""
    pages = int(params.get("pages", 8))
    shreds_per_page = int(params.get("shreds_per_page", 80))
    controller = system.machine.controller
    page_size = system.config.kernel.page_size
    for _ in range(shreds_per_page):
        for page in range(1, pages + 1):
            # Dirty one block then shred the page again (reuse).
            controller.store_block(page * page_size, None)
            system.machine.shred_register.write(page * page_size,
                                                kernel_mode=True)
    zero_reads = 0
    probes = 0
    for page in range(1, pages + 1):
        result = controller.fetch_block(page * page_size)
        probes += 1
        if result.zero_filled:
            zero_reads += 1
    return {
        "probes": float(probes),
        "zero_reads": float(zero_reads),
        "zero_read_fraction": zero_reads / probes,
    }
