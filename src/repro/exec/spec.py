"""BackendSpec: one parseable grammar for every execution backend.

Before this module, choosing a backend meant wiring a constructor by
hand in every entry point (``SerialBackend()``, ``ForkPoolBackend(8)``,
``DistributedBackend([...])``). :class:`BackendSpec` replaces that with
a small spec-string grammar shared by the library API
(:meth:`ExecutionBackend.from_spec <repro.exec.ExecutionBackend>`,
``Runner(backend="fork:8")``) and the CLI (``--backend``)::

    serial                          in-process reference execution
    fork                            fork pool, one job per CPU
    fork:8                          fork pool with 8 jobs
    dist://h1:7070,h2:7070          distributed dispatch to fixed workers
    cluster://host:7071             shared experiment cluster client
    cluster://host:7071?weight=3&client=nightly&keyfile=cluster.key

Options after ``?`` are URL-style ``key=value`` pairs; ``dist://``
accepts the same worker-tuning knobs as ``DistributedBackend``
(``task_timeout``, ``max_retries``), ``cluster://`` accepts ``weight``
(fair-share priority), ``client`` (display name) and ``keyfile``
(HMAC frame auth; see ``docs/SERVICE.md``).

The dataclass is frozen and hashable, so a spec can key a cache or sit
in an :class:`~repro.exec.Experiment`-style config without ceremony;
:meth:`BackendSpec.create` instantiates the actual backend.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qsl

from ..errors import BackendError
from ..obs import MetricsRegistry

#: Spec kinds understood by :meth:`BackendSpec.parse`.
KINDS = ("serial", "fork", "dist", "cluster")


def _default_jobs() -> int:
    try:
        return multiprocessing.cpu_count()
    except NotImplementedError:     # pragma: no cover - exotic platforms
        return 2


@dataclass(frozen=True)
class BackendSpec:
    """A frozen, hashable description of an execution backend.

    ``options`` is a tuple of ``(key, value)`` string pairs (not a
    dict) to keep the dataclass hashable; use :meth:`option` to read
    one.
    """

    kind: str
    jobs: int = 1
    addresses: Tuple[str, ...] = ()
    options: Tuple[Tuple[str, str], ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise BackendError(
                f"unknown backend kind {self.kind!r}; expected one of "
                f"{', '.join(KINDS)}")
        if self.jobs < 1:
            raise BackendError(f"jobs must be >= 1, got {self.jobs}")

    # -- parsing ------------------------------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "BackendSpec":
        """Parse a spec string (see the module docstring for grammar)."""
        if not isinstance(text, str) or not text.strip():
            raise BackendError(f"empty backend spec: {text!r}")
        text = text.strip()
        scheme, separator, rest = text.partition("://")
        if separator:
            return cls._parse_url(scheme.lower(), rest, text)
        name, separator, argument = text.partition(":")
        name = name.lower()
        if name == "serial":
            if separator:
                raise BackendError(
                    f"'serial' takes no argument, got {text!r}")
            return cls(kind="serial")
        if name == "fork":
            if not separator or not argument:
                return cls(kind="fork", jobs=_default_jobs())
            try:
                jobs = int(argument)
            except ValueError:
                raise BackendError(
                    f"fork spec wants 'fork:<jobs>', got {text!r}")
            return cls(kind="fork", jobs=jobs)
        raise BackendError(
            f"cannot parse backend spec {text!r}; expected 'serial', "
            f"'fork[:N]', 'dist://host:port,...' or 'cluster://host:port'")

    @classmethod
    def _parse_url(cls, scheme: str, rest: str, text: str) -> "BackendSpec":
        if scheme in ("dist", "distributed"):
            kind = "dist"
        elif scheme == "cluster":
            kind = "cluster"
        else:
            raise BackendError(
                f"unknown backend scheme {scheme!r} in {text!r}; "
                f"expected dist:// or cluster://")
        hosts, _, query = rest.partition("?")
        addresses = tuple(part.strip() for part in hosts.split(",")
                          if part.strip())
        if not addresses:
            raise BackendError(f"backend spec {text!r} names no endpoint")
        if kind == "cluster" and len(addresses) != 1:
            raise BackendError(
                f"cluster:// takes exactly one dispatcher endpoint, "
                f"got {len(addresses)} in {text!r}")
        for address in addresses:
            host, separator, port = address.rpartition(":")
            if not separator or not host or not port.isdigit():
                raise BackendError(
                    f"bad endpoint {address!r} in backend spec {text!r}; "
                    f"expected host:port")
        options = tuple(sorted(parse_qsl(query, keep_blank_values=True)))
        return cls(kind=kind, addresses=addresses, options=options)

    @classmethod
    def coerce(cls, value: "SpecLike") -> "BackendSpec":
        """A :class:`BackendSpec` from a spec, string, or None (serial)."""
        if value is None:
            return cls(kind="serial")
        if isinstance(value, cls):
            return value
        return cls.parse(value)

    # -- accessors ----------------------------------------------------------------

    def option(self, key: str, default: Optional[str] = None,
               ) -> Optional[str]:
        for name, value in self.options:
            if name == key:
                return value
        return default

    def _float_option(self, key: str) -> Optional[float]:
        raw = self.option(key)
        if raw is None:
            return None
        try:
            return float(raw)
        except ValueError:
            raise BackendError(
                f"backend option {key}={raw!r} is not a number")

    def _int_option(self, key: str) -> Optional[int]:
        raw = self.option(key)
        if raw is None:
            return None
        try:
            return int(raw)
        except ValueError:
            raise BackendError(
                f"backend option {key}={raw!r} is not an integer")

    def describe(self) -> str:
        """The canonical spec string this spec round-trips to."""
        if self.kind == "serial":
            return "serial"
        if self.kind == "fork":
            return f"fork:{self.jobs}"
        query = "&".join(f"{key}={value}" for key, value in self.options)
        suffix = f"?{query}" if query else ""
        return f"{self.kind}://{','.join(self.addresses)}{suffix}"

    # -- instantiation ------------------------------------------------------------

    def create(self, *, metrics: Optional[MetricsRegistry] = None,
               task_timeout: Optional[float] = None) -> Any:
        """Instantiate the backend this spec describes.

        ``metrics`` and ``task_timeout`` apply to the backends that
        accept them (dist, cluster) and are ignored by the local kinds;
        spec options override neither — explicit arguments win.
        """
        # Same-package imports, deferred only to break the
        # spec <-> backends module cycle.
        from .backends import (DistributedBackend, ForkPoolBackend,
                               SerialBackend)
        if self.kind == "serial":
            return SerialBackend()
        if self.kind == "fork":
            return ForkPoolBackend(self.jobs)
        if self.kind == "dist":
            kwargs: Dict[str, Any] = {}
            timeout = task_timeout if task_timeout is not None \
                else self._float_option("task_timeout")
            if timeout is not None:
                kwargs["task_timeout"] = timeout
            retries = self._int_option("max_retries")
            if retries is not None:
                kwargs["max_retries"] = retries
            if metrics is not None:
                kwargs["metrics"] = metrics
            return DistributedBackend(list(self.addresses), **kwargs)
        from .cluster import ClusterBackend
        kwargs = {}
        weight = self._int_option("weight")
        if weight is not None:
            kwargs["weight"] = weight
        client = self.option("client")
        if client is not None:
            kwargs["client_name"] = client
        keyfile = self.option("keyfile")
        if keyfile is not None:
            kwargs["keyfile"] = keyfile
        timeout = task_timeout if task_timeout is not None \
            else self._float_option("frame_timeout")
        if timeout is not None:
            kwargs["frame_timeout"] = timeout
        return ClusterBackend(self.addresses[0], **kwargs)


#: Anything :meth:`BackendSpec.coerce` accepts.
SpecLike = Optional[Any]
