"""Simulation-as-a-service: the multi-tenant experiment cluster.

:class:`ClusterDispatcher` is a long-lived asyncio service that turns
the per-run :class:`~repro.exec.DistributedBackend` topology inside
out. Instead of one client driving a fixed list of worker addresses,
*everyone dials the dispatcher*:

* **Workers** self-register over a persistent connection
  (``repro worker serve --register HOST:PORT``), send idle heartbeats,
  and leave via graceful drain — the fleet can grow, shrink and roll
  without any client noticing.
* **Clients** (:class:`ClusterBackend`, pluggable into
  :class:`~repro.exec.Runner` like any other backend) submit batches of
  experiment documents and stream results back. Many clients share the
  dispatcher concurrently; a deficit-round-robin :class:`FairQueue`
  gives each client a share of the worker fleet proportional to its
  ``weight``.
* **A shared cache tier**: the dispatcher consults one
  :class:`~repro.exec.ResultCache` for every submission, so any
  client's warm hit is every client's warm hit, and identical
  experiments submitted concurrently by different clients are
  *coalesced* into a single execution whose result fans out to all
  submitters.

Fault handling mirrors the distributed backend: a worker that dies
mid-task has its task re-queued for the survivors (charged to the
worker, not the task), an executor error burns one of the task's
retries, and a task that exhausts ``max_retries`` fails only its own
batch. A ``drain`` admin request completes all queued and in-flight
work — none lost, none duplicated — then refuses new submissions.

All connections speak the length-prefixed JSON protocol of
:mod:`repro.exec.wire`; give the dispatcher and every peer the same
keyfile (:class:`~repro.exec.wire.FrameAuth`) and each frame in both
directions is HMAC-signed, with unauthenticated peers dropped at the
first frame. Pass ``ssl`` contexts through the seams for encrypted
transport.

Telemetry rides the ``exec.cluster.*`` namespace (queue depth,
per-task latency, drain latency, cache-tier hits; see
``docs/OBSERVABILITY.md``), and per-client throughput is served from
the ``status`` admin request.
"""

from __future__ import annotations

import asyncio
import collections
import contextlib
import os
import socket
import threading
import time
from typing import (Any, Deque, Dict, Iterator, List, Optional, Sequence,
                    Tuple)

from ..errors import (BackendError, ClusterError, WireAuthError,
                      WireProtocolError)
from ..obs import (DEFAULT_DURATION_BUCKETS_NS, MetricsRegistry, SpanTracer,
                   default_tracer, merge_span_records)
from ..sim.system import SystemReport
from .backends import Address, ExecutionBackend, NotifyFn, parse_address
from .cache import ResultCache
from .experiment import Experiment
from .wire import (HEADER_BYTES, MSG_BATCH_DONE, MSG_DRAIN, MSG_DRAINED,
                   MSG_ERROR, MSG_GOODBYE, MSG_HELLO, MSG_NOTICE, MSG_OK,
                   MSG_PING, MSG_PONG, MSG_RESULT, MSG_RUN, MSG_SHUTDOWN,
                   MSG_STATUS, MSG_SUBMIT, MSG_WELCOME, PROTO_VERSION,
                   FrameAuth, decode_payload, encode_frame, hello_message,
                   recv_message, send_message, unpack_length)

#: How long a connecting peer has to present its ``hello`` frame.
HANDSHAKE_TIMEOUT = 10.0


class _ConnectionClosed(Exception):
    """The peer hung up (EOF / reset) — a session end, not a protocol bug."""


async def _read_frame(reader: asyncio.StreamReader,
                      auth: Optional[FrameAuth]) -> Dict[str, Any]:
    """Read one wire frame from a stream, verifying auth when enabled."""
    try:
        header = await reader.readexactly(HEADER_BYTES)
        payload = await reader.readexactly(unpack_length(header))
    except (asyncio.IncompleteReadError, ConnectionError):
        raise _ConnectionClosed()
    return decode_payload(payload, auth=auth)


# ---------------------------------------------------------------------------
# Fair scheduling
# ---------------------------------------------------------------------------

class FairQueue:
    """A deficit-round-robin multi-tenant task queue.

    Each tenant owns a FIFO of unit-cost tasks and a ``weight``; one
    scheduling round serves up to ``weight`` tasks per tenant, so a
    tenant with weight 3 receives three times the worker fleet of a
    tenant with weight 1 while both have work queued — and an idle
    tenant costs nothing (classic DRR with quantum = weight).

    Purely in-memory and single-threaded: the dispatcher drives it from
    the event loop only.
    """

    def __init__(self) -> None:
        self._queues: Dict[str, Deque[Any]] = {}
        self._weights: Dict[str, int] = {}
        self._deficit: Dict[str, float] = {}
        self._active: Deque[str] = collections.deque()

    def push(self, tenant: str, item: Any, *, weight: int = 1) -> None:
        """Enqueue one task for ``tenant`` (registering it if new)."""
        if weight < 1:
            raise BackendError(f"tenant weight must be >= 1, got {weight}")
        if tenant not in self._queues:
            self._queues[tenant] = collections.deque()
            self._deficit[tenant] = 0.0
        self._weights[tenant] = int(weight)
        queue = self._queues[tenant]
        if not queue and tenant not in self._active:
            self._active.append(tenant)
        queue.append(item)

    def pop(self) -> Optional[Any]:
        """The next task under DRR order, or ``None`` when empty."""
        while self._active:
            tenant = self._active[0]
            queue = self._queues.get(tenant)
            if not queue:
                self._active.popleft()
                if tenant in self._deficit:
                    self._deficit[tenant] = 0.0
                continue
            if self._deficit[tenant] < 1.0:
                self._deficit[tenant] += self._weights[tenant]
                self._active.rotate(-1)
                continue
            self._deficit[tenant] -= 1.0
            return queue.popleft()
        return None

    def drop_tenant(self, tenant: str) -> List[Any]:
        """Forget a tenant, returning its queued tasks (for cleanup)."""
        dropped = list(self._queues.pop(tenant, ()))
        self._weights.pop(tenant, None)
        self._deficit.pop(tenant, None)
        try:
            self._active.remove(tenant)
        except ValueError:
            pass
        return dropped

    def depth(self, tenant: Optional[str] = None) -> int:
        if tenant is not None:
            return len(self._queues.get(tenant, ()))
        return sum(len(queue) for queue in self._queues.values())

    def tenants(self) -> List[str]:
        return [t for t, queue in self._queues.items() if queue]

    def __len__(self) -> int:
        return self.depth()


# ---------------------------------------------------------------------------
# Dispatcher state records
# ---------------------------------------------------------------------------

class _ClusterTask:
    """One unit of cluster work, shared by every client that wants it.

    ``targets`` lists the ``(client_id, batch, index)`` deliveries the
    result owes; coalesced submissions append extra targets instead of
    queueing duplicate work. A task with no targets left still runs (to
    warm the shared cache) but delivers to nobody.
    """

    __slots__ = ("key", "experiment", "payload", "label", "attempts",
                 "targets", "trace")

    def __init__(self, key: str, experiment: Experiment,
                 payload: Dict[str, Any], label: str,
                 targets: List[Tuple[int, str, int]],
                 trace: Optional[Dict[str, Any]] = None) -> None:
        self.key = key
        self.experiment = experiment
        self.payload = payload
        self.label = label
        self.attempts = 0
        self.targets = targets
        #: TraceContext document of the first submitter, propagated to
        #: the executing worker and stamped on the dispatcher's span.
        self.trace = trace


class _WorkerSession:
    """Dispatcher-side state of one registered worker connection."""

    __slots__ = ("id", "name", "writer", "task", "task_id", "started",
                 "started_ns", "deadline", "last_seen", "completed",
                 "draining", "closing")

    def __init__(self, session_id: int, name: str,
                 writer: asyncio.StreamWriter, now: float) -> None:
        self.id = session_id
        self.name = name
        self.writer = writer
        self.task: Optional[_ClusterTask] = None
        self.task_id = -1
        self.started = now
        self.started_ns = 0       # perf_counter_ns at assignment (spans)
        self.deadline = 0.0
        self.last_seen = now
        self.completed = 0
        self.draining = False
        self.closing = False


class _ClientSession:
    """Dispatcher-side state of one client connection."""

    __slots__ = ("id", "name", "weight", "writer", "remaining", "submitted",
                 "completed")

    def __init__(self, session_id: int, name: str, weight: int,
                 writer: asyncio.StreamWriter) -> None:
        self.id = session_id
        self.name = name
        self.weight = weight
        self.writer = writer
        #: per-batch undelivered result count, for ``batch-done`` frames
        self.remaining: Dict[str, int] = {}
        self.submitted = 0
        self.completed = 0

    @property
    def tenant(self) -> str:
        return f"{self.id}"


# ---------------------------------------------------------------------------
# The dispatcher
# ---------------------------------------------------------------------------

class ClusterDispatcher:
    """The long-lived multiplexing heart of the experiment cluster.

    Parameters
    ----------
    host / port:
        Bind address; ``port=0`` lets the OS pick (read it back from
        :attr:`address` after :meth:`start`).
    auth:
        A :class:`~repro.exec.wire.FrameAuth` shared with every worker
        and client. When set, each frame in both directions is
        HMAC-signed and a peer whose first frame fails verification is
        dropped (counted in ``exec.cluster.auth_failures``).
    cache:
        The cluster-wide shared :class:`~repro.exec.ResultCache` tier.
        Every submission is served from it when warm, and every fresh
        result is stored back, so one client's run is every client's
        cache hit. ``None`` disables the tier.
    task_timeout:
        Seconds a worker may hold one task before the dispatcher closes
        the wedged connection and charges the attempt to the task.
    max_retries:
        Failed attempts (errors, timeouts) a task survives before its
        submitting batches receive an ``error`` frame.
    heartbeat_timeout:
        Seconds of silence after which a registered worker is declared
        dead and its in-flight task re-queued.
    tick:
        Reaper period (seconds) for deadline and heartbeat checks.
    ssl:
        Optional ``ssl.SSLContext`` for the listening socket — the TLS
        seam; peers must then connect with a matching client context.
    metrics:
        The dispatcher's :class:`~repro.obs.MetricsRegistry`; receives
        the ``exec.cluster.*`` instruments.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 auth: Optional[FrameAuth] = None,
                 cache: Optional[ResultCache] = None,
                 task_timeout: float = 300.0,
                 max_retries: int = 3,
                 heartbeat_timeout: float = 30.0,
                 tick: float = 0.25,
                 ssl: Optional[Any] = None,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self.host = host
        self.port = int(port)
        self.auth = auth
        self.cache = cache
        self.task_timeout = float(task_timeout)
        self.max_retries = int(max_retries)
        self.heartbeat_timeout = float(heartbeat_timeout)
        self.tick = float(tick)
        self.ssl = ssl
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: Dispatcher-side span records (task lifetimes, cache hits);
        #: each record is also shipped to the submitting client so the
        #: merged timeline gets a dispatcher lane.
        self.tracer = SpanTracer(process="dispatcher")

        self._workers: Dict[int, _WorkerSession] = {}
        self._clients: Dict[int, _ClientSession] = {}
        self._queue = FairQueue()
        #: queued + in-flight tasks by experiment content hash
        self._pending: Dict[str, _ClusterTask] = {}
        self._next_id = 1
        self._next_task_id = 1
        self._draining = False
        self._stopped = False
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._reaper: Optional[asyncio.Task] = None
        self._drain_waiters: List[asyncio.Future] = []
        self._on_stop: List[Any] = []

        if self.cache is not None:
            self.cache.bind_metrics(self.metrics, prefix="exec.cluster.cache")
        counter = self.metrics.counter
        self._m_submissions = counter("exec.cluster.submissions", unit="ops")
        self._m_completed = counter("exec.cluster.tasks_completed",
                                    unit="ops")
        self._m_failed = counter("exec.cluster.tasks_failed", unit="ops")
        self._m_requeues = counter("exec.cluster.requeues", unit="ops")
        self._m_retries = counter("exec.cluster.retries", unit="ops")
        self._m_timeouts = counter("exec.cluster.timeouts", unit="ops")
        self._m_coalesced = counter("exec.cluster.coalesced", unit="ops")
        self._m_results = counter("exec.cluster.results_sent", unit="ops")
        self._m_auth_failures = counter("exec.cluster.auth_failures",
                                        unit="ops")
        self._m_queue_depth = self.metrics.gauge("exec.cluster.queue_depth")
        self._m_workers = self.metrics.gauge("exec.cluster.workers")
        self._m_clients = self.metrics.gauge("exec.cluster.clients")
        self._m_inflight = self.metrics.gauge("exec.cluster.inflight")
        self._m_task_duration = self.metrics.histogram(
            "exec.cluster.task_duration_ns", unit="ns",
            buckets=DEFAULT_DURATION_BUCKETS_NS)
        self._m_drain_duration = self.metrics.histogram(
            "exec.cluster.drain_duration_ns", unit="ns",
            buckets=DEFAULT_DURATION_BUCKETS_NS)

    # -- lifecycle ----------------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        return (self.host, self.port)

    @property
    def draining(self) -> bool:
        return self._draining

    def add_stop_callback(self, callback) -> None:
        """Run ``callback()`` (loop thread) once the dispatcher stops."""
        self._on_stop.append(callback)

    async def start(self) -> Tuple[str, int]:
        """Bind, start serving and start the reaper; returns the endpoint."""
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port, ssl=self.ssl)
        self.port = self._server.sockets[0].getsockname()[1]
        self._reaper = self._loop.create_task(self._reap_loop())
        return self.address

    async def stop(self) -> None:
        """Stop serving: goodbye the workers, close every connection."""
        if self._stopped:
            return
        self._stopped = True
        if self._reaper is not None:
            self._reaper.cancel()
        if self._server is not None:
            self._server.close()
        for waiter in self._drain_waiters:
            if not waiter.done():
                waiter.set_result(None)
        self._drain_waiters.clear()
        for worker in list(self._workers.values()):
            self._write(worker.writer, {"type": MSG_GOODBYE})
            worker.closing = True
            worker.writer.close()
        for client in list(self._clients.values()):
            client.writer.close()
        if self._server is not None:
            await self._server.wait_closed()
        for callback in self._on_stop:
            callback()

    # -- connection handling ------------------------------------------------------

    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        try:
            hello = await asyncio.wait_for(_read_frame(reader, self.auth),
                                           HANDSHAKE_TIMEOUT)
        except WireAuthError:
            self._m_auth_failures.inc()
            writer.close()
            return
        except (_ConnectionClosed, WireProtocolError, asyncio.TimeoutError,
                OSError):
            writer.close()
            return
        if hello.get("type") != MSG_HELLO:
            self._write(writer, {"type": MSG_ERROR,
                                 "error": "expected a hello frame",
                                 "kind": "ClusterError"})
            writer.close()
            return
        # Absent means a pre-versioning peer, which speaks generation 1.
        proto = hello.get("proto", PROTO_VERSION)
        if proto != PROTO_VERSION:
            self._write(writer, {"type": MSG_ERROR,
                                 "error": f"unsupported protocol version "
                                          f"{proto!r} (dispatcher speaks "
                                          f"{PROTO_VERSION})",
                                 "kind": "ClusterError"})
            writer.close()
            return
        role = hello.get("role")
        try:
            if role == "worker":
                await self._serve_worker(reader, writer, hello)
            elif role == "client":
                await self._serve_client(reader, writer, hello)
            else:
                self._write(writer, {"type": MSG_ERROR,
                                     "error": f"unknown role {role!r}",
                                     "kind": "ClusterError"})
        finally:
            writer.close()

    # -- worker sessions ----------------------------------------------------------

    async def _serve_worker(self, reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter,
                            hello: Dict[str, Any]) -> None:
        assert self._loop is not None
        session_id = self._next_id
        self._next_id += 1
        name = str(hello.get("name") or f"worker-{session_id}")
        worker = _WorkerSession(session_id, name, writer, self._loop.time())
        self._workers[session_id] = worker
        self._m_workers.set(len(self._workers))
        self._write(writer, {"type": MSG_WELCOME, "id": session_id})
        self._assign()
        try:
            while not self._stopped:
                try:
                    message = await _read_frame(reader, self.auth)
                except WireAuthError:
                    self._m_auth_failures.inc()
                    break
                except (_ConnectionClosed, WireProtocolError, OSError):
                    break
                worker.last_seen = self._loop.time()
                kind = message.get("type")
                if kind == MSG_PING:
                    # The snapshot lets a registered worker's scrape
                    # endpoint mirror the cluster-wide exec.cluster.*
                    # instruments (see run_registered_worker).
                    self._write(writer, {"type": MSG_PONG,
                                         "metrics": self.metrics.snapshot()})
                elif kind == MSG_RESULT:
                    self._on_worker_result(worker, message)
                elif kind == MSG_ERROR:
                    self._on_worker_error(worker, message)
                elif kind == MSG_DRAIN:
                    worker.draining = True
                    if worker.task is None:
                        self._write(writer, {"type": MSG_GOODBYE})
                        break
                # anything else: ignore (forward compatibility)
        finally:
            self._workers.pop(session_id, None)
            self._m_workers.set(len(self._workers))
            stranded = worker.task
            worker.task = None
            if stranded is not None and not self._stopped:
                # The endpoint died mid-task: requeue for the
                # survivors, don't charge the task's retry budget.
                self._m_requeues.inc()
                self._requeue(stranded)
            self._assign()

    def _on_worker_result(self, worker: _WorkerSession,
                          message: Dict[str, Any]) -> None:
        assert self._loop is not None
        task = worker.task
        if task is None or message.get("task") != worker.task_id:
            return      # stale frame from a reassigned/timed-out task
        worker.task = None
        worker.completed += 1
        self._m_completed.inc()
        self._m_task_duration.observe(
            (self._loop.time() - worker.started) * 1e9)
        report_doc = message.get("result")
        if not isinstance(report_doc, dict):
            self._task_attempt_failed(task, "worker sent a result frame "
                                            "without a result document")
            self._assign()
            return
        self._pending.pop(task.key, None)
        if self.cache is not None:
            self.cache.put(task.experiment, SystemReport.from_dict(report_doc))
        worker_spans = message.get("spans")
        if not isinstance(worker_spans, list):
            worker_spans = []
        trace = task.trace or {}
        dispatcher_span = self.tracer.record_span(
            "exec.cluster.task",
            start_ns=worker.started_ns,
            duration_ns=time.perf_counter_ns() - worker.started_ns,
            attrs={"label": task.label, "worker": worker.name,
                   "attempts": task.attempts},
            trace_id=trace.get("trace_id"),
            parent_span_id=trace.get("parent_span_id"))
        spans = merge_span_records(worker_spans, [dispatcher_span.to_dict()])
        for client_id, batch, index in task.targets:
            self._send_result(client_id, batch, index, report_doc,
                              spans=spans)
        if worker.draining:
            self._write(worker.writer, {"type": MSG_GOODBYE})
            worker.closing = True
            worker.writer.close()
        self._assign()

    def _on_worker_error(self, worker: _WorkerSession,
                         message: Dict[str, Any]) -> None:
        task = worker.task
        if task is None or message.get("task") != worker.task_id:
            return
        worker.task = None
        error = f"{message.get('kind', 'Error')}: {message.get('error', '?')}"
        self._task_attempt_failed(task, error)
        if worker.draining:
            self._write(worker.writer, {"type": MSG_GOODBYE})
            worker.closing = True
            worker.writer.close()
        self._assign()

    def _task_attempt_failed(self, task: _ClusterTask, error: str) -> None:
        """One attempt failed on a live worker: retry or fail the task."""
        task.attempts += 1
        self._m_retries.inc()
        if task.attempts > self.max_retries:
            self._fail_task(task, f"experiment {task.label!r} failed after "
                                  f"{task.attempts} attempts: {error}")
        else:
            self._requeue(task)

    def _requeue(self, task: _ClusterTask) -> None:
        """Put a task back on the queue (or drop it if nobody wants it)."""
        if not task.targets:
            self._pending.pop(task.key, None)
            return
        owner_id = task.targets[0][0]
        owner = self._clients.get(owner_id)
        weight = owner.weight if owner is not None else 1
        self._queue.push(str(owner_id), task, weight=weight)
        for client_id, batch, _ in task.targets:
            self._send_notice(client_id, batch, task.label)
        self._update_queue_gauges()

    def _fail_task(self, task: _ClusterTask, error: str) -> None:
        self._pending.pop(task.key, None)
        self._m_failed.inc()
        for client_id, batch, index in task.targets:
            self._send_task_error(client_id, batch, index, task.label, error)

    # -- client sessions ----------------------------------------------------------

    async def _serve_client(self, reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter,
                            hello: Dict[str, Any]) -> None:
        session_id = self._next_id
        self._next_id += 1
        name = str(hello.get("name") or f"client-{session_id}")
        weight = max(1, int(hello.get("weight", 1)))
        client = _ClientSession(session_id, name, weight, writer)
        self._clients[session_id] = client
        self._m_clients.set(len(self._clients))
        self._write(writer, {"type": MSG_WELCOME, "id": session_id})
        try:
            while not self._stopped:
                try:
                    message = await _read_frame(reader, self.auth)
                except WireAuthError:
                    self._m_auth_failures.inc()
                    break
                except (_ConnectionClosed, WireProtocolError, OSError):
                    break
                kind = message.get("type")
                if kind == MSG_SUBMIT:
                    self._on_submit(client, message)
                elif kind == MSG_STATUS:
                    self._write(writer, self._status_reply())
                elif kind == MSG_DRAIN:
                    await self._on_drain(client, message)
                elif kind == MSG_SHUTDOWN:
                    self._write(writer, {"type": MSG_OK})
                    assert self._loop is not None
                    self._loop.create_task(self.stop())
                    break
                elif kind == MSG_PING:
                    self._write(writer, {"type": MSG_PONG})
                # anything else: ignore (forward compatibility)
        finally:
            self._clients.pop(session_id, None)
            self._m_clients.set(len(self._clients))
            if not self._stopped:
                self._forget_client(client)

    def _on_submit(self, client: _ClientSession,
                   message: Dict[str, Any]) -> None:
        batch = str(message.get("batch", "b0"))
        documents = message.get("experiments")
        if self._draining:
            self._write(client.writer, {
                "type": MSG_ERROR, "batch": batch,
                "error": "dispatcher is draining and refuses new batches",
                "kind": "ClusterError"})
            return
        if not isinstance(documents, list) or not documents:
            self._write(client.writer, {
                "type": MSG_ERROR, "batch": batch,
                "error": "submit carries no experiment list",
                "kind": "ClusterError"})
            return
        self._m_submissions.inc()
        client.submitted += len(documents)
        client.remaining[batch] = len(documents)
        trace = message.get("trace")
        if not isinstance(trace, dict):
            trace = None
        for index, document in enumerate(documents):
            try:
                experiment = Experiment.from_dict(document)
            except Exception as error:    # noqa: BLE001 - report, don't die
                self._send_task_error(client.id, batch, index,
                                      f"task-{index}",
                                      f"bad experiment document: {error}")
                continue
            label = experiment.name or experiment.workload
            key = experiment.content_hash()
            lookup_ns = time.perf_counter_ns()
            cached = self.cache.get(experiment) \
                if self.cache is not None else None
            if cached is not None:
                hit_span = self.tracer.record_span(
                    "exec.cluster.cache_hit",
                    start_ns=lookup_ns,
                    duration_ns=time.perf_counter_ns() - lookup_ns,
                    attrs={"label": label},
                    trace_id=(trace or {}).get("trace_id"),
                    parent_span_id=(trace or {}).get("parent_span_id"))
                self._send_result(client.id, batch, index, cached.to_dict(),
                                  spans=[hit_span.to_dict()])
                continue
            pending = self._pending.get(key)
            if pending is not None:
                # Identical work already queued or running (possibly
                # for another client): coalesce instead of re-running.
                pending.targets.append((client.id, batch, index))
                self._m_coalesced.inc()
                continue
            task = _ClusterTask(key, experiment, document, label,
                                [(client.id, batch, index)], trace=trace)
            self._pending[key] = task
            self._queue.push(client.tenant, task, weight=client.weight)
        self._update_queue_gauges()
        self._assign()

    def _forget_client(self, client: _ClientSession) -> None:
        """Client hung up: cancel its queued work, strip its deliveries."""
        for task in self._queue.drop_tenant(client.tenant):
            task.targets = [t for t in task.targets if t[0] != client.id]
            if task.targets:
                # Coalesced followers still want it: hand the task to
                # the first surviving submitter's queue.
                self._requeue(task)
            else:
                self._pending.pop(task.key, None)
        for task in self._pending.values():
            task.targets = [t for t in task.targets if t[0] != client.id]
        self._update_queue_gauges()
        self._maybe_finish_drain()

    # -- drain --------------------------------------------------------------------

    async def _on_drain(self, client: _ClientSession,
                        message: Dict[str, Any]) -> None:
        assert self._loop is not None
        started = self._loop.time()
        self._draining = True
        waiter: asyncio.Future = self._loop.create_future()
        self._drain_waiters.append(waiter)
        self._maybe_finish_drain()
        await waiter
        self._m_drain_duration.observe((self._loop.time() - started) * 1e9)
        if message.get("stop_workers"):
            for worker in list(self._workers.values()):
                worker.draining = True
                if worker.task is None:
                    self._write(worker.writer, {"type": MSG_GOODBYE})
                    worker.closing = True
                    worker.writer.close()
        self._write(client.writer, {
            "type": MSG_DRAINED,
            "completed": int(self._m_completed.value),
            "duration_s": self._loop.time() - started})

    def _maybe_finish_drain(self) -> None:
        if not self._draining or not self._drain_waiters:
            return
        inflight = sum(1 for w in self._workers.values()
                       if w.task is not None)
        if len(self._queue) == 0 and inflight == 0:
            for waiter in self._drain_waiters:
                if not waiter.done():
                    waiter.set_result(None)
            self._drain_waiters.clear()

    # -- scheduling ---------------------------------------------------------------

    def _assign(self) -> None:
        """Hand queued tasks to idle workers, fairest client first."""
        assert self._loop is not None
        while True:
            worker = next(
                (w for w in self._workers.values()
                 if w.task is None and not w.draining and not w.closing),
                None)
            if worker is None:
                break
            task = self._queue.pop()
            if task is None:
                break
            task_id = self._next_task_id
            self._next_task_id += 1
            worker.task = task
            worker.task_id = task_id
            worker.started = self._loop.time()
            worker.started_ns = time.perf_counter_ns()
            worker.deadline = worker.started + self.task_timeout
            frame = {"type": MSG_RUN, "task": task_id,
                     "experiment": task.payload}
            if task.trace is not None:
                frame["trace"] = task.trace
            self._write(worker.writer, frame)
        self._update_queue_gauges()
        self._maybe_finish_drain()

    def _update_queue_gauges(self) -> None:
        self._m_queue_depth.set(len(self._queue))
        self._m_inflight.set(sum(1 for w in self._workers.values()
                                 if w.task is not None))

    async def _reap_loop(self) -> None:
        """Periodic deadline and heartbeat enforcement."""
        assert self._loop is not None
        while True:
            await asyncio.sleep(self.tick)
            now = self._loop.time()
            for worker in list(self._workers.values()):
                if worker.closing:
                    continue
                if worker.task is not None and now > worker.deadline:
                    # Wedged mid-task: the protocol has no cancel, so
                    # drop the connection and charge the attempt to
                    # the task (it may be the task's fault).
                    task = worker.task
                    worker.task = None
                    worker.closing = True
                    worker.writer.close()
                    self._m_timeouts.inc()
                    self._task_attempt_failed(
                        task, f"no result within {self.task_timeout:g}s")
                elif now - worker.last_seen > self.heartbeat_timeout:
                    worker.closing = True
                    worker.writer.close()
            self._assign()

    # -- client delivery ----------------------------------------------------------

    def _send_result(self, client_id: int, batch: str, index: int,
                     report_doc: Dict[str, Any], *,
                     spans: Optional[List[Dict[str, Any]]] = None) -> None:
        client = self._clients.get(client_id)
        if client is None:
            return
        client.completed += 1
        self._m_results.inc()
        frame = {"type": MSG_RESULT, "batch": batch,
                 "task": index, "result": report_doc}
        if spans:
            frame["spans"] = spans
        self._write(client.writer, frame)
        self._batch_delivered(client, batch)

    def _send_task_error(self, client_id: int, batch: str, index: int,
                         label: str, error: str) -> None:
        client = self._clients.get(client_id)
        if client is None:
            return
        self._write(client.writer, {"type": MSG_ERROR, "batch": batch,
                                    "task": index, "label": label,
                                    "error": error,
                                    "kind": "BackendError"})
        self._batch_delivered(client, batch)

    def _send_notice(self, client_id: int, batch: str, label: str) -> None:
        client = self._clients.get(client_id)
        if client is None:
            return
        self._write(client.writer, {"type": MSG_NOTICE, "batch": batch,
                                    "event": "retry", "label": label})

    def _batch_delivered(self, client: _ClientSession, batch: str) -> None:
        if batch not in client.remaining:
            return
        client.remaining[batch] -= 1
        if client.remaining[batch] <= 0:
            del client.remaining[batch]
            self._write(client.writer,
                        {"type": MSG_BATCH_DONE, "batch": batch})

    def _write(self, writer: asyncio.StreamWriter,
               message: Dict[str, Any]) -> None:
        if writer.is_closing():
            return
        try:
            writer.write(encode_frame(message, auth=self.auth))
        except (OSError, RuntimeError):    # pragma: no cover - racing close
            pass

    # -- introspection ------------------------------------------------------------

    def _status_reply(self) -> Dict[str, Any]:
        now = self._loop.time() if self._loop is not None else 0.0
        workers = [{"name": w.name, "completed": w.completed,
                    "busy": w.task is not None, "draining": w.draining,
                    "idle_s": max(0.0, now - w.last_seen)}
                   for w in self._workers.values()]
        clients = [{"name": c.name, "weight": c.weight,
                    "submitted": c.submitted, "completed": c.completed,
                    "queued": self._queue.depth(c.tenant)}
                   for c in self._clients.values()]
        reply: Dict[str, Any] = {
            "type": MSG_STATUS,
            "workers": workers,
            "clients": clients,
            "queue_depth": len(self._queue),
            "inflight": sum(1 for w in self._workers.values()
                            if w.task is not None),
            "tasks_completed": int(self._m_completed.value),
            "draining": self._draining,
        }
        if self.cache is not None:
            stats = self.cache.stats
            reply["cache"] = {"hits": stats.hits, "misses": stats.misses,
                              "stores": stats.stores}
        # The full registry snapshot powers `repro top` and any other
        # poller that wants more than the summary counters above.
        reply["metrics"] = self.metrics.snapshot()
        return reply


# ---------------------------------------------------------------------------
# Thread-hosted server wrapper
# ---------------------------------------------------------------------------

class ClusterServer:
    """Host a :class:`ClusterDispatcher` on a background event loop.

    The synchronous face of the service for tests, scripts and the CLI:
    ``start()`` returns the bound endpoint, ``wait()`` blocks until an
    admin ``shutdown`` stops the dispatcher, ``close()`` tears it down.
    Usable as a context manager.
    """

    def __init__(self, **kwargs: Any) -> None:
        self.dispatcher = ClusterDispatcher(**kwargs)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._stopped = threading.Event()
        self.dispatcher.add_stop_callback(self._stopped.set)

    @property
    def address(self) -> Tuple[str, int]:
        return self.dispatcher.address

    @property
    def endpoint(self) -> str:
        host, port = self.dispatcher.address
        return f"{host}:{port}"

    def start(self) -> Tuple[str, int]:
        if self._loop is not None:
            return self.dispatcher.address
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(target=self._loop.run_forever,
                                        name="repro-cluster", daemon=True)
        self._thread.start()
        future = asyncio.run_coroutine_threadsafe(self.dispatcher.start(),
                                                  self._loop)
        try:
            return future.result(timeout=30.0)
        except BaseException:
            self.close()
            raise

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the dispatcher stops; True if it did."""
        return self._stopped.wait(timeout)

    def close(self) -> None:
        loop, thread = self._loop, self._thread
        self._loop = self._thread = None
        if loop is None:
            return
        with contextlib.suppress(Exception):
            asyncio.run_coroutine_threadsafe(
                self.dispatcher.stop(), loop).result(timeout=10.0)
        loop.call_soon_threadsafe(loop.stop)
        if thread is not None:
            thread.join(timeout=10.0)
        loop.close()

    def __enter__(self) -> "ClusterServer":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


# ---------------------------------------------------------------------------
# The client backend
# ---------------------------------------------------------------------------

class ClusterBackend(ExecutionBackend):
    """Run batches through a shared experiment cluster.

    Plug into :class:`~repro.exec.Runner` like any backend — the runner
    keeps its local cache consultation above this seam, and the
    dispatcher adds the *cluster-wide* cache tier below it.

    Parameters
    ----------
    address:
        The dispatcher endpoint, ``("host", port)`` or ``"host:port"``.
    client_name:
        Display name in cluster status output (default: pid-derived).
    weight:
        Fair-share weight of this client (``>= 1``): the deficit-round-
        robin scheduler serves ``weight`` tasks per round.
    auth / keyfile:
        Frame authentication: a shared :class:`FrameAuth`, or the path
        of the cluster keyfile to load one from.
    connect_timeout / frame_timeout:
        Seconds for the TCP connect and for each result frame gap.
    ssl:
        Optional client-side ``ssl.SSLContext`` (the TLS seam).
    """

    def __init__(self, address: Address, *,
                 client_name: Optional[str] = None,
                 weight: int = 1,
                 auth: Optional[FrameAuth] = None,
                 keyfile: Optional[str] = None,
                 connect_timeout: float = 10.0,
                 frame_timeout: float = 600.0,
                 ssl: Optional[Any] = None) -> None:
        self.address = parse_address(address)
        if weight < 1:
            raise BackendError(f"client weight must be >= 1, got {weight}")
        self.weight = int(weight)
        self.client_name = client_name or f"client-{os.getpid()}"
        if auth is None and keyfile is not None:
            auth = FrameAuth.from_keyfile(keyfile)
        self.auth = auth
        self.connect_timeout = float(connect_timeout)
        self.frame_timeout = float(frame_timeout)
        self.ssl = ssl

    def describe(self) -> str:
        host, port = self.address
        return f"cluster({host}:{port})"

    def _connect(self) -> socket.socket:
        try:
            sock = socket.create_connection(self.address,
                                            timeout=self.connect_timeout)
        except OSError as error:
            host, port = self.address
            raise ClusterError(
                f"cannot reach cluster dispatcher {host}:{port}: {error}")
        if self.ssl is not None:
            host, _ = self.address
            sock = self.ssl.wrap_socket(sock, server_hostname=host)
        sock.settimeout(self.frame_timeout)
        return sock

    def _recv(self, sock: socket.socket) -> Dict[str, Any]:
        try:
            return recv_message(sock, auth=self.auth)
        except socket.timeout:
            raise ClusterError(
                f"no frame from the dispatcher within "
                f"{self.frame_timeout:g}s")
        except WireProtocolError as error:
            host, port = self.address
            raise ClusterError(
                f"cluster session with {host}:{port} broke: {error} "
                f"(a mid-handshake hangup usually means an auth key "
                f"mismatch)")

    def submit(self, experiments: Sequence[Experiment], *,
               notify: Optional[NotifyFn] = None,
               ) -> Iterator[Tuple[int, SystemReport]]:
        if not experiments:
            return
        sock = self._connect()
        try:
            send_message(sock, hello_message("client", self.client_name,
                                            weight=self.weight),
                         auth=self.auth)
            welcome = self._recv(sock)
            if welcome.get("type") != MSG_WELCOME:
                raise ClusterError(
                    f"dispatcher refused the session: {welcome!r}")
            documents = [experiment.to_dict() for experiment in experiments]
            # The batch's trace context rides the submit frame so
            # dispatcher and worker spans land in this client's trace.
            batch_id = "b0"
            send_message(sock, {"type": MSG_SUBMIT, "batch": batch_id,
                                "experiments": documents,
                                "trace": default_tracer().context().to_dict()},
                         auth=self.auth)
            remaining = len(documents)
            while remaining:
                message = self._recv(sock)
                kind = message.get("type")
                # Every dispatcher frame echoes the batch tag; a
                # mismatch means crossed sessions, not a task failure.
                tag = message.get("batch")
                if tag is not None and tag != batch_id:
                    raise ClusterError(
                        f"frame for unknown batch {tag!r} "
                        f"(this session submitted {batch_id!r})")
                if kind == MSG_RESULT:
                    spans = message.get("spans")
                    if isinstance(spans, list) and spans:
                        default_tracer().ingest(spans)
                    yield (int(message["task"]),
                           SystemReport.from_dict(message["result"]))
                    remaining -= 1
                elif kind == MSG_NOTICE:
                    if notify is not None:
                        notify(str(message.get("label", "?")),
                               str(message.get("event", "retry")))
                elif kind == MSG_ERROR:
                    raise BackendError(
                        f"cluster task {message.get('label', '?')!r} "
                        f"failed: {message.get('error', '?')}")
                elif kind == MSG_BATCH_DONE:
                    raise ClusterError(
                        f"dispatcher closed the batch with {remaining} "
                        f"results missing")
        finally:
            sock.close()


# ---------------------------------------------------------------------------
# Admin helpers
# ---------------------------------------------------------------------------

def _admin_request(address: Address, message: Dict[str, Any], *,
                   auth: Optional[FrameAuth] = None,
                   timeout: float = 30.0) -> Dict[str, Any]:
    """One request/reply exchange on a throwaway client session."""
    endpoint = parse_address(address)
    try:
        sock = socket.create_connection(endpoint, timeout=10.0)
    except OSError as error:
        raise ClusterError(
            f"cannot reach cluster dispatcher "
            f"{endpoint[0]}:{endpoint[1]}: {error}")
    try:
        sock.settimeout(timeout)
        send_message(sock, hello_message("client", "admin"), auth=auth)
        welcome = recv_message(sock, auth=auth)
        if welcome.get("type") != MSG_WELCOME:
            raise ClusterError(f"dispatcher refused the session: {welcome!r}")
        send_message(sock, message, auth=auth)
        return recv_message(sock, auth=auth)
    except socket.timeout:
        raise ClusterError(
            f"no reply from the dispatcher within {timeout:g}s")
    except WireProtocolError as error:
        raise ClusterError(f"cluster admin request failed: {error}")
    finally:
        sock.close()


def cluster_status(address: Address, *, auth: Optional[FrameAuth] = None,
                   timeout: float = 30.0) -> Dict[str, Any]:
    """The dispatcher's live status document (workers, clients, queue)."""
    return _admin_request(address, {"type": MSG_STATUS}, auth=auth,
                          timeout=timeout)


def cluster_drain(address: Address, *, auth: Optional[FrameAuth] = None,
                  stop_workers: bool = False,
                  timeout: float = 600.0) -> Dict[str, Any]:
    """Drain the cluster: finish all queued and in-flight work.

    Blocks until the dispatcher reports ``drained``; afterwards new
    submissions are refused. ``stop_workers`` additionally says goodbye
    to every registered worker once the queue is empty.
    """
    reply = _admin_request(address,
                           {"type": MSG_DRAIN,
                            "stop_workers": bool(stop_workers)},
                           auth=auth, timeout=timeout)
    if reply.get("type") != MSG_DRAINED:
        raise ClusterError(f"unexpected drain reply: {reply!r}")
    return reply


def cluster_shutdown(address: Address, *, auth: Optional[FrameAuth] = None,
                     timeout: float = 30.0) -> Dict[str, Any]:
    """Stop the dispatcher itself (workers receive ``goodbye``)."""
    return _admin_request(address, {"type": MSG_SHUTDOWN}, auth=auth,
                          timeout=timeout)
