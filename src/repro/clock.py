"""Simulated-time plumbing: :class:`SimClock` and the ``now_ns`` shim.

Historically every datapath method on the controllers took the current
simulated time as a positional ``now_ns: float = 0.0`` argument, and
each caller threaded it by hand. That convention is deprecated in two
steps:

* the time parameter is now called ``at`` and may be omitted — each
  controller carries a :class:`SimClock` whose ``now_ns`` is used when
  no explicit time is given, so engines advance one shared clock
  instead of threading floats through every frame;
* the old keyword spelling ``now_ns=`` still works on the public
  datapath methods (``fetch_block``/``store_block``/``read_block``/
  ``write_block``) but raises a :class:`DeprecationWarning` via
  :func:`resolve_time`.

Positional call sites (``fetch_block(addr, t)``) bind to ``at``
unchanged, so existing code keeps working silently.

The clock holds *simulated* nanoseconds — it is advanced explicitly by
engines, never read from the host (analyzer rule REPRO101 forbids wall
clocks in simulation layers).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Optional


@dataclass
class SimClock:
    """A monotonic simulated-time source shared by one machine.

    ``now_ns`` only moves forward: :meth:`advance` adds a delta and
    :meth:`advance_to` ratchets to a later absolute time (out-of-order
    completions never rewind it).
    """

    now_ns: float = 0.0

    def advance(self, delta_ns: float) -> float:
        """Move time forward by ``delta_ns``; returns the new time."""
        if delta_ns < 0:
            raise ValueError(f"clock cannot move backwards ({delta_ns} ns)")
        self.now_ns += delta_ns
        return self.now_ns

    def advance_to(self, at_ns: float) -> float:
        """Ratchet to ``at_ns`` if it is later than now; returns now."""
        if at_ns > self.now_ns:
            self.now_ns = at_ns
        return self.now_ns

    def reset(self) -> None:
        self.now_ns = 0.0


def resolve_time(clock: Optional[SimClock], at: Optional[float],
                 now_ns: Optional[float]) -> float:
    """Pick the effective simulated time for one datapath call.

    Precedence: an explicit deprecated ``now_ns=`` keyword (warns), then
    an explicit ``at``, then the carried clock, then 0.0 — the last two
    make the historical default (``now_ns=0.0``) the fallback, so
    callers that never passed a time see identical behaviour.
    """
    if now_ns is not None:
        warnings.warn(
            "the now_ns= keyword is deprecated; pass the time positionally "
            "as 'at' or let the controller's SimClock supply it",
            DeprecationWarning, stacklevel=3)
        return now_ns
    if at is not None:
        return at
    if clock is not None:
        return clock.now_ns
    return 0.0
