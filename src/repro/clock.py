"""Simulated-time plumbing: :class:`SimClock` and the ``at=`` contract.

Historically every datapath method on the controllers took the current
simulated time as a positional ``now_ns: float = 0.0`` argument, and
each caller threaded it by hand. The parameter is now called ``at``
and may be omitted — each controller carries a :class:`SimClock` whose
``now_ns`` is used when no explicit time is given, so engines advance
one shared clock instead of threading floats through every frame.
Positional call sites (``fetch_block(addr, t)``) bind to ``at``
unchanged.

The deprecated keyword spelling ``now_ns=`` went through its
DeprecationWarning cycle and is now **removed**: passing it raises
``TypeError`` with a migration pointer (the keyword is still accepted
syntactically on the public datapath methods so the error can explain
itself rather than surface as an inscrutable "unexpected keyword
argument").

The clock holds *simulated* nanoseconds — it is advanced explicitly by
engines, never read from the host (analyzer rule REPRO101 forbids wall
clocks in simulation layers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass
class SimClock:
    """A monotonic simulated-time source shared by one machine.

    ``now_ns`` only moves forward: :meth:`advance` adds a delta and
    :meth:`advance_to` ratchets to a later absolute time (out-of-order
    completions never rewind it).
    """

    now_ns: float = 0.0

    def advance(self, delta_ns: float) -> float:
        """Move time forward by ``delta_ns``; returns the new time."""
        if delta_ns < 0:
            raise ValueError(f"clock cannot move backwards ({delta_ns} ns)")
        self.now_ns += delta_ns
        return self.now_ns

    def advance_to(self, at_ns: float) -> float:
        """Ratchet to ``at_ns`` if it is later than now; returns now."""
        if at_ns > self.now_ns:
            self.now_ns = at_ns
        return self.now_ns

    def reset(self) -> None:
        self.now_ns = 0.0


def resolve_time(clock: Optional[SimClock], at: Optional[float],
                 now_ns: Optional[float]) -> float:
    """Pick the effective simulated time for one datapath call.

    Precedence: an explicit ``at``, then the carried clock, then 0.0 —
    the last two make the historical default (``now_ns=0.0``) the
    fallback, so callers that never pass a time see identical
    behaviour. The removed ``now_ns=`` keyword raises ``TypeError``.
    """
    if now_ns is not None:
        raise TypeError(
            "the now_ns= keyword was removed; pass the time positionally "
            "as 'at' (fetch_block(addr, t)) or let the controller's "
            "SimClock supply it")
    if at is not None:
        return at
    if clock is not None:
        return clock.now_ns
    return 0.0
