"""The 4-level cache hierarchy with MESI coherence (Table 1).

Structure: private L1 and L2 per core; shared L3 and L4; one block size
throughout. The hierarchy is inclusive at the last level: every cached
block is resident in L4, and an L4 eviction back-invalidates all upper
levels. Authoritative data for the whole hierarchy lives in the L4
payloads (upper levels are tag-only), which keeps the functional model
simple — a write updates the L4 copy and marks it dirty; dirty L4
victims are written back to the memory controller below.

The hierarchy talks to the world below through two callbacks:

* ``miss_handler(address, now_ns) -> MemoryFetch`` — fetch a block from
  the (secure) memory controller; may report a *zero-filled* block for
  shredded pages that never touch NVM.
* ``writeback_handler(address, data, now_ns) -> None`` — a dirty block
  leaves the hierarchy.

Shredding interacts with the hierarchy through
:meth:`CacheHierarchy.invalidate_page` (step 2 of Figure 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..config import SystemConfig
from ..errors import AddressError
from .cache import Eviction, SetAssociativeCache
from .coherence import CoherenceDirectory


@dataclass
class MemoryFetch:
    """What the memory side returns for an LLC miss."""

    data: Optional[bytes]
    latency_ns: float
    zero_filled: bool = False


@dataclass
class PageInvalidation:
    """What :meth:`CacheHierarchy.invalidate_page` did."""

    blocks_invalidated: int = 0
    blocks_written_back: int = 0
    private_invalidations: int = 0


@dataclass
class HierarchyAccess:
    """Outcome of one load or store issued by a core."""

    address: int
    is_write: bool
    latency_cycles: int
    hit_level: str                      # "L1" | "L2" | "L3" | "L4" | "MEM" | "ZERO"
    data: Optional[bytes] = None
    writebacks: int = 0


MissHandler = Callable[[int, float], MemoryFetch]
WritebackHandler = Callable[[int, Optional[bytes], float], None]


class CacheHierarchy:
    """Private L1/L2 per core, shared L3/L4, inclusive at L4."""

    def __init__(self, config: SystemConfig,
                 miss_handler: MissHandler,
                 writeback_handler: WritebackHandler) -> None:
        self.config = config
        self.block_size = config.block_size
        self.num_cores = config.cpu.num_cores
        self.miss_handler = miss_handler
        self.writeback_handler = writeback_handler
        self.l1 = [SetAssociativeCache(config.l1) for _ in range(self.num_cores)]
        self.l2 = [SetAssociativeCache(config.l2) for _ in range(self.num_cores)]
        self.l3 = SetAssociativeCache(config.l3)
        self.l4 = SetAssociativeCache(config.l4)
        self.directory = CoherenceDirectory(self.num_cores)
        self._zero_block = bytes(self.block_size)
        self.functional = config.functional
        # Aggregate event counters.
        self.zero_fills = 0
        self.memory_fetches = 0
        self.writebacks = 0

    # -- helpers ---------------------------------------------------------------

    def _align(self, address: int) -> int:
        return address - (address % self.block_size)

    def _private_contains(self, core: int, address: int) -> bool:
        return self.l1[core].contains(address) or self.l2[core].contains(address)

    def _drop_private(self, core: int, address: int) -> None:
        """Remove a block from one core's private caches (no writeback:
        authoritative data is at L4)."""
        self.l1[core].invalidate(address)
        self.l2[core].invalidate(address)
        self.directory.evicted(address, core)

    def _handle_l4_eviction(self, eviction: Eviction, now_ns: float) -> int:
        """Back-invalidate an L4 victim everywhere and write back if dirty."""
        address = eviction.address
        self.l3.invalidate(address)
        for core in self.directory.sharers_of(address):
            self.l1[core].invalidate(address)
            self.l2[core].invalidate(address)
        self.directory.invalidate_block(address)
        if eviction.dirty:
            self.writeback_handler(address, eviction.payload, now_ns)
            self.writebacks += 1
            return 1
        return 0

    def _install_private(self, core: int, address: int) -> None:
        """Fill the block's tag into the core's L1 and L2."""
        for cache in (self.l1[core], self.l2[core]):
            evicted = cache.fill(address)
            if evicted is not None and not self._private_contains(core, evicted.address):
                self.directory.evicted(core=core, block_address=evicted.address)

    # -- the main access path ------------------------------------------------------

    def access(self, core: int, address: int, is_write: bool,
               data: Optional[bytes] = None, now_ns: float = 0.0,
               merge: Optional[tuple] = None) -> HierarchyAccess:
        """Issue one load or store from ``core`` at ``address``.

        ``data`` is the full-block payload for functional stores;
        alternatively ``merge=(offset, value_bytes)`` performs a
        sub-block store as a read-modify-write of the cached copy.
        Returns the access latency in core cycles and, for loads in
        functional mode, the block's bytes.
        """
        if core < 0 or core >= self.num_cores:
            raise AddressError(f"no such core {core}")
        address = self._align(address)
        latency = self.config.l1.latency_cycles
        writeback_count = 0

        # Coherence first: a store must gain exclusive ownership even on a
        # private-cache hit; a load miss may downgrade a remote owner.
        if is_write:
            for other in self.directory.write(address, core):
                self.l1[other].invalidate(address)
                self.l2[other].invalidate(address)

        hit_level = None
        if self.l1[core].lookup(address) is not None:
            hit_level = "L1"
        else:
            latency += self.config.l2.latency_cycles
            if self.l2[core].lookup(address) is not None:
                hit_level = "L2"
                self.l1[core].fill(address)
            else:
                if not is_write:
                    self.directory.read(address, core)
                latency += self.config.l3.latency_cycles
                if self.l3.lookup(address) is not None:
                    hit_level = "L3"
                    self._install_private(core, address)
                else:
                    latency += self.config.l4.latency_cycles
                    if self.l4.lookup(address) is not None:
                        hit_level = "L4"
                        self.l3.fill(address)
                        self._install_private(core, address)
                    else:
                        fetch = self.miss_handler(address, now_ns)
                        latency += self.config.cpu.ns_to_cycles(fetch.latency_ns)
                        hit_level = "ZERO" if fetch.zero_filled else "MEM"
                        if fetch.zero_filled:
                            self.zero_fills += 1
                        else:
                            self.memory_fetches += 1
                        payload = fetch.data if self.functional else None
                        if payload is None and self.functional:
                            payload = self._zero_block
                        evicted = self.l4.fill(address, payload)
                        if evicted is not None:
                            writeback_count += self._handle_l4_eviction(evicted, now_ns)
                        self.l3.fill(address)
                        self._install_private(core, address)

        if is_write and not self._private_contains(core, address):
            # The store path above may have hit in shared levels only.
            self._install_private(core, address)

        # Reads of blocks not previously owned establish directory state
        # even on private hits (first touch after fill handled above).
        if not is_write and hit_level in ("L1", "L2"):
            # Already a sharer; nothing to do.
            pass

        result_data: Optional[bytes] = None
        l4_line = self.l4.peek(address)
        if l4_line is None:
            # The fill above guarantees residence; guard for safety.
            raise AddressError(f"block {address:#x} missing from L4 after fill")
        if is_write:
            if self.functional:
                if merge is not None:
                    offset, value = merge
                    if offset < 0 or offset + len(value) > self.block_size:
                        raise AddressError("merge write exceeds block bounds")
                    base = l4_line.payload if l4_line.payload is not None \
                        else self._zero_block
                    l4_line.payload = (base[:offset] + bytes(value)
                                       + base[offset + len(value):])
                elif data is not None and len(data) == self.block_size:
                    l4_line.payload = bytes(data)
                else:
                    raise AddressError("functional store needs a full block "
                                       "payload or a merge fragment")
            l4_line.dirty = True
        else:
            result_data = l4_line.payload if self.functional else None

        return HierarchyAccess(address=address, is_write=is_write,
                               latency_cycles=latency, hit_level=hit_level,
                               data=result_data, writebacks=writeback_count)

    # -- shred support ------------------------------------------------------------

    def invalidate_page(self, page_address: int, page_size: int, *,
                        writeback: bool, now_ns: float = 0.0) -> "PageInvalidation":
        """Drop every block of a page from the whole hierarchy.

        With ``writeback=True`` (the baseline's non-temporal semantics)
        dirty L4 copies are flushed to memory; Silent Shredder passes
        ``False`` because the page's data is being destroyed anyway.
        """
        result = PageInvalidation()
        for offset in range(0, page_size, self.block_size):
            address = page_address + offset
            for core in self.directory.invalidate_block(address):
                self.l1[core].invalidate(address)
                self.l2[core].invalidate(address)
                result.private_invalidations += 1
            self.l3.invalidate(address)
            evicted = self.l4.invalidate(address)
            if evicted is not None:
                result.blocks_invalidated += 1
                if evicted.dirty and writeback:
                    self.writeback_handler(address, evicted.payload, now_ns)
                    self.writebacks += 1
                    result.blocks_written_back += 1
        return result

    def install_zero_block(self, core: int, address: int) -> None:
        """Install a zero-filled block without a memory fetch (used by
        temporal zeroing through the caches)."""
        address = self._align(address)
        evicted = self.l4.fill(address, self._zero_block if self.functional else None)
        if evicted is not None:
            self._handle_l4_eviction(evicted, 0.0)
        self.l3.fill(address)
        self._install_private(core, address)

    def flush_all(self, now_ns: float = 0.0) -> int:
        """Flush the entire hierarchy (dirty L4 lines written back)."""
        flushed = 0
        for core in range(self.num_cores):
            self.l1[core].flush_all()
            self.l2[core].flush_all()
        self.l3.flush_all()
        for eviction in self.l4.flush_all():
            self.writeback_handler(eviction.address, eviction.payload, now_ns)
            self.writebacks += 1
            flushed += 1
        self.directory = CoherenceDirectory(self.num_cores)
        return flushed

    def check_inclusion(self) -> None:
        """Raise if the L4-inclusion invariant is violated: every block
        resident in any upper level must be resident in L4."""
        resident_l4 = set(self.l4.resident_addresses())
        for cache in [self.l3, *self.l1, *self.l2]:
            for address in cache.resident_addresses():
                if address not in resident_l4:
                    raise AddressError(
                        f"{cache.name}: block {address:#x} cached above a "
                        "non-resident L4 line (inclusion violated)")

    def total_private_hits(self) -> int:
        return sum(c.stats.hits for c in self.l1) + sum(c.stats.hits for c in self.l2)
