"""The 4-level cache hierarchy with MESI coherence (Table 1).

Structure: private L1 and L2 per core; shared L3 and L4; one block size
throughout. The hierarchy is inclusive at the last level: every cached
block is resident in L4, and an L4 eviction back-invalidates all upper
levels. Authoritative data for the whole hierarchy lives in the L4
payloads (upper levels are tag-only), which keeps the functional model
simple — a write updates the L4 copy and marks it dirty; dirty L4
victims are written back to the memory controller below.

The hierarchy talks to the world below through two callbacks:

* ``miss_handler(address, now_ns) -> MemoryFetch`` — fetch a block from
  the (secure) memory controller; may report a *zero-filled* block for
  shredded pages that never touch NVM.
* ``writeback_handler(address, data, now_ns) -> None`` — a dirty block
  leaves the hierarchy.

Shredding interacts with the hierarchy through
:meth:`CacheHierarchy.invalidate_page` (step 2 of Figure 6).

Two datapaths serve loads and stores:

* :meth:`CacheHierarchy.access` — the scalar reference walk, one
  Python call per access.
* :meth:`CacheHierarchy.access_many` — the bulk walk: one pass over an
  epoch's aligned-address run with the per-level probes inlined against
  the flat array-backed set state (``way_tags`` + policy stamp arrays),
  consecutive identical accesses collapsed into guaranteed L1 hits, and
  LLC misses routed through an optional duck-typed port so the engine
  above can elide redundant zero-fill controller probes. Step-identical
  to a loop of scalar ``access()`` calls by construction (every branch
  is a transcription) and by test (hypothesis equivalence suite).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Tuple

from ..config import SystemConfig
from ..errors import AddressError
from .cache import Eviction, SetAssociativeCache
from .coherence import CoherenceDirectory, DirectoryEntry, MESIState


@dataclass
class MemoryFetch:
    """What the memory side returns for an LLC miss."""

    data: Optional[bytes]
    latency_ns: float
    zero_filled: bool = False


@dataclass
class PageInvalidation:
    """What :meth:`CacheHierarchy.invalidate_page` did."""

    blocks_invalidated: int = 0
    blocks_written_back: int = 0
    private_invalidations: int = 0


@dataclass
class HierarchyAccess:
    """Outcome of one load or store issued by a core."""

    address: int
    is_write: bool
    latency_cycles: int
    hit_level: str                      # "L1" | "L2" | "L3" | "L4" | "MEM" | "ZERO"
    data: Optional[bytes] = None
    writebacks: int = 0


@dataclass
class BulkAccessResult:
    """Aggregate outcome of one :meth:`CacheHierarchy.access_many` call.

    The counters mirror what a loop of scalar accesses would have
    produced; the ``runs``/``collapsed``/``fast_hits``/``slow_path``
    fields describe how the bulk walk got there (they feed the
    ``cache.bulk.*`` bench metrics).
    """

    accesses: int = 0
    reads: int = 0
    writes: int = 0
    latency_cycles: int = 0
    zero_fills: int = 0
    memory_fetches: int = 0
    writebacks: int = 0
    runs: int = 0               # distinct (core, block, op) runs walked
    collapsed: int = 0          # accesses absorbed as guaranteed L1 hits
    fast_hits: int = 0          # run heads resolved by an inlined L1-L4 probe
    slow_path: int = 0          # run heads that went below the LLC
    data: Optional[List[Optional[bytes]]] = None       # per-read payloads
    details: Optional[List[HierarchyAccess]] = None    # per-access outcomes


MissHandler = Callable[[int, float], MemoryFetch]
WritebackHandler = Callable[[int, Optional[bytes], float], None]


class CacheHierarchy:
    """Private L1/L2 per core, shared L3/L4, inclusive at L4."""

    def __init__(self, config: SystemConfig,
                 miss_handler: MissHandler,
                 writeback_handler: WritebackHandler) -> None:
        self.config = config
        self.block_size = config.block_size
        self.num_cores = config.cpu.num_cores
        self.miss_handler = miss_handler
        self.writeback_handler = writeback_handler
        self.l1 = [SetAssociativeCache(config.l1) for _ in range(self.num_cores)]
        self.l2 = [SetAssociativeCache(config.l2) for _ in range(self.num_cores)]
        self.l3 = SetAssociativeCache(config.l3)
        self.l4 = SetAssociativeCache(config.l4)
        self.directory = CoherenceDirectory(self.num_cores)
        self._zero_block = bytes(self.block_size)
        self.functional = config.functional
        # Aggregate event counters.
        self.zero_fills = 0
        self.memory_fetches = 0
        self.writebacks = 0

    # -- helpers ---------------------------------------------------------------

    def _align(self, address: int) -> int:
        return address - (address % self.block_size)

    def _private_contains(self, core: int, address: int) -> bool:
        return self.l1[core].contains(address) or self.l2[core].contains(address)

    def _drop_private(self, core: int, address: int) -> None:
        """Remove a block from one core's private caches (no writeback:
        authoritative data is at L4)."""
        self.l1[core].drop(address)
        self.l2[core].drop(address)
        self.directory.evicted(address, core)

    def _handle_l4_eviction(self, eviction: Eviction, now_ns: float,
                            sink: Optional[WritebackHandler] = None) -> int:
        """Back-invalidate an L4 victim everywhere and write back if dirty.

        ``sink`` lets the bulk walk route the writeback through its miss
        port (which must flush deferred zero-fill accounting before any
        real controller entry); ``None`` uses the plain handler.
        """
        address = eviction.address
        self.l3.drop(address)
        for core in self.directory.sharers_of(address):
            self.l1[core].drop(address)
            self.l2[core].drop(address)
        self.directory.invalidate_block(address)
        if eviction.dirty:
            (sink or self.writeback_handler)(address, eviction.payload, now_ns)
            self.writebacks += 1
            return 1
        return 0

    def _install_private(self, core: int, address: int) -> None:
        """Fill the block's tag into the core's L1 and L2."""
        for cache in (self.l1[core], self.l2[core]):
            victim = cache.fill_tag(address)
            if victim >= 0 and not self._private_contains(core, victim):
                self.directory.evicted(core=core, block_address=victim)

    # -- the main access path ------------------------------------------------------

    def access(self, core: int, address: int, is_write: bool,
               data: Optional[bytes] = None, now_ns: float = 0.0,
               merge: Optional[tuple] = None) -> HierarchyAccess:
        """Issue one load or store from ``core`` at ``address``.

        ``data`` is the full-block payload for functional stores;
        alternatively ``merge=(offset, value_bytes)`` performs a
        sub-block store as a read-modify-write of the cached copy.
        Returns the access latency in core cycles and, for loads in
        functional mode, the block's bytes.
        """
        if core < 0 or core >= self.num_cores:
            raise AddressError(f"no such core {core}")
        address = self._align(address)
        latency = self.config.l1.latency_cycles
        writeback_count = 0

        # Coherence first: a store must gain exclusive ownership even on a
        # private-cache hit; a load miss may downgrade a remote owner.
        if is_write:
            for other in self.directory.write(address, core):
                self.l1[other].drop(address)
                self.l2[other].drop(address)

        hit_level = None
        if self.l1[core].lookup(address) is not None:
            hit_level = "L1"
        else:
            latency += self.config.l2.latency_cycles
            if self.l2[core].lookup(address) is not None:
                hit_level = "L2"
                self.l1[core].fill_tag(address)
            else:
                if not is_write:
                    self.directory.read(address, core)
                latency += self.config.l3.latency_cycles
                if self.l3.lookup(address) is not None:
                    hit_level = "L3"
                    self._install_private(core, address)
                else:
                    latency += self.config.l4.latency_cycles
                    if self.l4.lookup(address) is not None:
                        hit_level = "L4"
                        self.l3.fill_tag(address)
                        self._install_private(core, address)
                    else:
                        fetch = self.miss_handler(address, now_ns)
                        latency += self.config.cpu.ns_to_cycles(fetch.latency_ns)
                        hit_level = "ZERO" if fetch.zero_filled else "MEM"
                        if fetch.zero_filled:
                            self.zero_fills += 1
                        else:
                            self.memory_fetches += 1
                        payload = fetch.data if self.functional else None
                        if payload is None and self.functional:
                            payload = self._zero_block
                        evicted = self.l4.fill(address, payload)
                        if evicted is not None:
                            writeback_count += self._handle_l4_eviction(evicted, now_ns)
                        self.l3.fill_tag(address)
                        self._install_private(core, address)

        if is_write and not self._private_contains(core, address):
            # The store path above may have hit in shared levels only.
            self._install_private(core, address)

        # Reads of blocks not previously owned establish directory state
        # even on private hits (first touch after fill handled above).
        if not is_write and hit_level in ("L1", "L2"):
            # Already a sharer; nothing to do.
            pass

        result_data: Optional[bytes] = None
        l4_line = self.l4.peek(address)
        if l4_line is None:
            # The fill above guarantees residence; guard for safety.
            raise AddressError(f"block {address:#x} missing from L4 after fill")
        if is_write:
            if self.functional:
                if merge is not None:
                    offset, value = merge
                    if offset < 0 or offset + len(value) > self.block_size:
                        raise AddressError("merge write exceeds block bounds")
                    base = l4_line.payload if l4_line.payload is not None \
                        else self._zero_block
                    l4_line.payload = (base[:offset] + bytes(value)
                                       + base[offset + len(value):])
                elif data is not None and len(data) == self.block_size:
                    l4_line.payload = bytes(data)
                else:
                    raise AddressError("functional store needs a full block "
                                       "payload or a merge fragment")
            l4_line.dirty = True
        else:
            result_data = l4_line.payload if self.functional else None

        return HierarchyAccess(address=address, is_write=is_write,
                               latency_cycles=latency, hit_level=hit_level,
                               data=result_data, writebacks=writeback_count)

    # -- the bulk access path ------------------------------------------------------

    def access_many(self, cores: Sequence[int], addresses: Sequence[int],
                    is_writes: Sequence[Any], now_ns: float = 0.0, *,
                    payloads: Optional[Sequence[Optional[bytes]]] = None,
                    collect_data: bool = False, details: bool = False,
                    kernel: Any = None, port: Any = None) -> BulkAccessResult:
        """Issue a whole access stream in one pass (bulk walk).

        Equivalent — access by access, stat by stat — to::

            for core, address, w in zip(cores, addresses, is_writes):
                self.access(core, address, w, ...)

        but dramatically cheaper: the stream is segmented into runs of
        identical ``(core, block, op)`` triples (the ownership pre-pass:
        within a run the head access establishes residence and, for
        stores, exclusive ownership, so the tail is a guaranteed L1 hit
        collapsed into one bulk stats/recency update), and each run head
        is resolved by per-level probes inlined against the flat
        ``_index``/``way_tags``/stamp arrays — verify-at-use against
        live cache state, never a stale prediction.

        ``kernel`` (duck-typed, see :mod:`repro.sim.kernels`) may
        pre-compute block alignment and run boundaries — the numpy
        backend does this vectorised; ``None`` uses an inline loop.
        ``port`` (duck-typed) intercepts the memory boundary: it must
        provide ``fetch(address, now_ns) -> (latency_ns, zero_filled,
        data)``, ``writeback(address, payload, now_ns)`` and
        ``flush()``; ``None`` uses the hierarchy's own handlers.
        ``payloads`` carries per-access full-block store payloads for
        functional mode; ``collect_data`` gathers per-read payloads;
        ``details`` additionally records one :class:`HierarchyAccess`
        per access (the equivalence suite compares these against the
        scalar walk).
        """
        n = len(addresses)
        if len(cores) != n or len(is_writes) != n:
            raise AddressError("access_many: cores/addresses/is_writes "
                               "lengths disagree")
        if payloads is not None and len(payloads) != n:
            raise AddressError("access_many: payloads length disagrees "
                               "with addresses")
        result = BulkAccessResult()
        if n == 0:
            if collect_data:
                result.data = []
            if details:
                result.details = []
            return result

        block_size = self.block_size
        if kernel is not None:
            aligned = kernel.align_blocks(addresses, block_size)
            bounds = kernel.run_bounds(cores, aligned, is_writes)
        else:
            aligned = [a - a % block_size for a in addresses]
            bounds = [0]
            prev_core, prev_addr = cores[0], aligned[0]
            prev_w = bool(is_writes[0])
            for i in range(1, n):
                w = bool(is_writes[i])
                if (aligned[i] != prev_addr or cores[i] != prev_core
                        or w != prev_w):
                    bounds.append(i)
                    prev_core, prev_addr, prev_w = cores[i], aligned[i], w
            bounds.append(n)

        # Pre-bound hot state: one attribute walk for the whole stream.
        num_cores = self.num_cores
        l1s, l2s, l3, l4 = self.l1, self.l2, self.l3, self.l4
        l1_index = [c._index for c in l1s]
        l2_index = [c._index for c in l2s]
        l1_stats = [c.stats for c in l1s]
        l2_stats = [c.stats for c in l2s]
        l1_policy = [c.policy for c in l1s]
        l2_policy = [c.policy for c in l2s]
        l3_index, l4_index = l3._index, l4._index
        l3_stats, l4_stats = l3.stats, l4.stats
        l3_policy, l4_policy = l3.policy, l4.policy
        l4_sets = l4._sets
        directory = self.directory
        dir_entries = directory._entries
        cfg = self.config
        l1_lat = cfg.l1.latency_cycles
        l12_lat = l1_lat + cfg.l2.latency_cycles
        l123_lat = l12_lat + cfg.l3.latency_cycles
        l1234_lat = l123_lat + cfg.l4.latency_cycles
        ns_to_cycles = cfg.cpu.ns_to_cycles
        functional = self.functional
        zero_block = self._zero_block
        modified = MESIState.MODIFIED
        install = self._install_private
        handle_evict = self._handle_l4_eviction

        if port is not None:
            port_fetch = port.fetch
            port_writeback = port.writeback
        else:
            miss_handler = self.miss_handler

            def port_fetch(addr: int, t: float) -> Tuple[float, bool, Any]:
                fetch = miss_handler(addr, t)
                return fetch.latency_ns, fetch.zero_filled, fetch.data

            port_writeback = None      # _handle_l4_eviction uses the handler

        out_data: Optional[List[Optional[bytes]]] = [] if collect_data else None
        out_details: Optional[List[HierarchyAccess]] = [] if details else None
        total_cycles = 0
        reads = writes = 0
        runs = collapsed = fast_hits = slow = 0

        for run_index in range(len(bounds) - 1):
            start = bounds[run_index]
            stop = bounds[run_index + 1]
            core = cores[start]
            address = aligned[start]
            w = bool(is_writes[start])
            if core < 0 or core >= num_cores:
                raise AddressError(f"no such core {core}")
            runs += 1
            block = address // block_size
            writeback_count = 0

            # Coherence first — verify-at-use ownership check. A store
            # by the current M-state owner makes directory.write a pure
            # no-op (invariant: sharers == {core}), and a store to an
            # untracked block creates exactly the entry write() would.
            if w:
                entry = dir_entries.get(address)
                if entry is None:
                    dir_entries[address] = DirectoryEntry({core}, core, modified)
                elif entry.owner == core and entry.state is modified:
                    pass
                else:
                    for other in directory.write(address, core):
                        l1s[other].drop(address)
                        l2s[other].drop(address)

            # Inlined per-level probes (transcription of access()).
            loc = l1_index[core].get(block)
            if loc is not None:
                l1_stats[core].hits += 1
                l1_policy[core].touch(loc[0], loc[1])
                latency = l1_lat
                hit_level = "L1"
                fast_hits += 1
            else:
                l1_stats[core].misses += 1
                loc = l2_index[core].get(block)
                if loc is not None:
                    l2_stats[core].hits += 1
                    l2_policy[core].touch(loc[0], loc[1])
                    l1s[core].fill_tag(address)
                    latency = l12_lat
                    hit_level = "L2"
                    fast_hits += 1
                else:
                    l2_stats[core].misses += 1
                    if not w:
                        directory.read(address, core)
                    loc = l3_index.get(block)
                    if loc is not None:
                        l3_stats.hits += 1
                        l3_policy.touch(loc[0], loc[1])
                        install(core, address)
                        latency = l123_lat
                        hit_level = "L3"
                        fast_hits += 1
                    else:
                        l3_stats.misses += 1
                        loc = l4_index.get(block)
                        if loc is not None:
                            l4_stats.hits += 1
                            l4_policy.touch(loc[0], loc[1])
                            l3.fill_tag(address)
                            install(core, address)
                            latency = l1234_lat
                            hit_level = "L4"
                            fast_hits += 1
                        else:
                            l4_stats.misses += 1
                            fetch_ns, zero_filled, fetched = \
                                port_fetch(address, now_ns)
                            latency = l1234_lat + ns_to_cycles(fetch_ns)
                            if zero_filled:
                                self.zero_fills += 1
                                result.zero_fills += 1
                                hit_level = "ZERO"
                            else:
                                self.memory_fetches += 1
                                result.memory_fetches += 1
                                hit_level = "MEM"
                            slow += 1
                            payload = fetched if functional else None
                            if payload is None and functional:
                                payload = zero_block
                            evicted = l4.fill(address, payload)
                            if evicted is not None:
                                writeback_count += handle_evict(
                                    evicted, now_ns, sink=port_writeback)
                            l3.fill_tag(address)
                            install(core, address)

            if w and not (block in l1_index[core] or block in l2_index[core]):
                install(core, address)

            head_data: Optional[bytes] = None
            if w or functional:
                l4_loc = l4_index.get(block)
                if l4_loc is None:
                    raise AddressError(f"block {address:#x} missing from L4 "
                                       "after fill")
                line = l4_sets[l4_loc[0]][l4_loc[1]]
            else:
                # Timing-mode read: the line's state is not consulted
                # (no payload, no dirty transition), so the post-fill
                # residence guard is left to the inclusion invariant
                # checker rather than probed per access.
                line = None
            if w:
                if functional:
                    store = payloads[start] if payloads is not None else None
                    if store is None or len(store) != block_size:
                        raise AddressError("functional store needs a full "
                                           "block payload or a merge fragment")
                    line.payload = bytes(store)
                line.dirty = True
                writes += 1
            else:
                head_data = line.payload if functional else None
                reads += 1
                if out_data is not None:
                    out_data.append(head_data)
            total_cycles += latency
            result.writebacks += writeback_count
            if out_details is not None:
                out_details.append(HierarchyAccess(
                    address=address, is_write=w, latency_cycles=latency,
                    hit_level=hit_level, data=head_data,
                    writebacks=writeback_count))

            # Collapse the run tail: after the head, the block is
            # private-resident (and, for stores, exclusively owned), so
            # every repeat is an L1 hit with no directory effect.
            count = stop - start - 1
            if count:
                l1_loc = l1_index[core][block]
                l1_stats[core].hits += count
                l1_policy[core].touch_many(l1_loc[0], l1_loc[1], count)
                total_cycles += l1_lat * count
                collapsed += count
                if w:
                    writes += count
                    if functional:
                        # Scalar semantics: each store overwrites the L4
                        # payload in order; only the last survives, but
                        # every payload is validated like access() does.
                        assert payloads is not None
                        for i in range(start + 1, stop):
                            store = payloads[i]
                            if store is None or len(store) != block_size:
                                raise AddressError(
                                    "functional store needs a full block "
                                    "payload or a merge fragment")
                            line.payload = bytes(store)
                    tail_data: Optional[bytes] = None
                else:
                    reads += count
                    tail_data = line.payload if functional else None
                    if out_data is not None:
                        out_data.extend([tail_data] * count)
                if out_details is not None:
                    for _ in range(count):
                        out_details.append(HierarchyAccess(
                            address=address, is_write=w,
                            latency_cycles=l1_lat, hit_level="L1",
                            data=tail_data, writebacks=0))

        if port is not None:
            port.flush()
        result.accesses = n
        result.reads = reads
        result.writes = writes
        result.latency_cycles = total_cycles
        result.runs = runs
        result.collapsed = collapsed
        result.fast_hits = fast_hits
        result.slow_path = slow
        result.data = out_data
        result.details = out_details
        return result

    # -- shred support ------------------------------------------------------------

    def invalidate_page(self, page_address: int, page_size: int, *,
                        writeback: bool, now_ns: float = 0.0) -> "PageInvalidation":
        """Drop every block of a page from the whole hierarchy.

        With ``writeback=True`` (the baseline's non-temporal semantics)
        dirty L4 copies are flushed to memory; Silent Shredder passes
        ``False`` because the page's data is being destroyed anyway.
        """
        result = PageInvalidation()
        for offset in range(0, page_size, self.block_size):
            address = page_address + offset
            for core in self.directory.invalidate_block(address):
                self.l1[core].drop(address)
                self.l2[core].drop(address)
                result.private_invalidations += 1
            self.l3.drop(address)
            evicted = self.l4.invalidate(address)
            if evicted is not None:
                result.blocks_invalidated += 1
                if evicted.dirty and writeback:
                    self.writeback_handler(address, evicted.payload, now_ns)
                    self.writebacks += 1
                    result.blocks_written_back += 1
        return result

    def install_zero_block(self, core: int, address: int) -> None:
        """Install a zero-filled block without a memory fetch (used by
        temporal zeroing through the caches)."""
        address = self._align(address)
        evicted = self.l4.fill(address, self._zero_block if self.functional else None)
        if evicted is not None:
            self._handle_l4_eviction(evicted, 0.0)
        self.l3.fill_tag(address)
        self._install_private(core, address)

    def flush_all(self, now_ns: float = 0.0) -> int:
        """Flush the entire hierarchy (dirty L4 lines written back)."""
        flushed = 0
        for core in range(self.num_cores):
            self.l1[core].flush_all()
            self.l2[core].flush_all()
        self.l3.flush_all()
        for eviction in self.l4.flush_all():
            self.writeback_handler(eviction.address, eviction.payload, now_ns)
            self.writebacks += 1
            flushed += 1
        self.directory = CoherenceDirectory(self.num_cores)
        return flushed

    def check_inclusion(self) -> None:
        """Raise if the L4-inclusion invariant is violated: every block
        resident in any upper level must be resident in L4."""
        resident_l4 = set(self.l4.resident_addresses())
        for cache in [self.l3, *self.l1, *self.l2]:
            for address in cache.resident_addresses():
                if address not in resident_l4:
                    raise AddressError(
                        f"{cache.name}: block {address:#x} cached above a "
                        "non-resident L4 line (inclusion violated)")

    def total_private_hits(self) -> int:
        return sum(c.stats.hits for c in self.l1) + sum(c.stats.hits for c in self.l2)
