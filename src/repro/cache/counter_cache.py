"""The counter (IV) cache.

Caches one :class:`~repro.core.iv.CounterBlock` per physical page — the
64-bit major counter co-located with all the page's 7-bit minor counters
in one 64 B entry (section 2.2). The Figure 12 sweep varies its capacity;
Table 1's baseline is 4 MB, 8-way, 10 cycles.

Persistence (section 4.3): with the ``writeback`` policy the cache is
battery-backed and dirty counter blocks are flushed on demand or at
power-down; with ``writethrough`` every counter update is immediately
propagated to the NVM counter region by the owning controller.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (TYPE_CHECKING, Callable, Dict, Iterable, List, Optional,
                    Tuple)

from ..config import CacheConfig, CounterCacheConfig
from .cache import SetAssociativeCache

if TYPE_CHECKING:  # imported lazily to avoid a package-import cycle
    from ..core.iv import CounterBlock


@dataclass
class CounterEviction:
    """A counter block pushed out of the cache."""

    page_id: int
    block: CounterBlock
    dirty: bool


@dataclass
class CounterLookup:
    """Outcome of one bulk :meth:`CounterCache.lookup_many` probe.

    ``hits`` maps page id -> resident counter block; ``misses`` keeps
    the missing page ids in first-probe order so the caller can load
    them from NVM in a deterministic sequence.
    """

    hits: Dict[int, "CounterBlock"] = field(default_factory=dict)
    misses: List[int] = field(default_factory=list)


class CounterCache:
    """Set-associative cache of per-page counter blocks, keyed by page id."""

    def __init__(self, config: CounterCacheConfig) -> None:
        self.config = config
        self.latency_cycles = config.latency_cycles
        self.write_through = config.write_policy == "writethrough"
        geometry = CacheConfig(
            name="CounterCache",
            size_bytes=config.size_bytes,
            associativity=config.associativity,
            block_size=config.block_size,
            latency_cycles=config.latency_cycles,
        )
        self._cache = SetAssociativeCache(geometry)
        self._block_size = config.block_size

    # Page ids are mapped onto synthetic block addresses so the generic
    # set-associative machinery (sets, ways, LRU, stats) applies directly.
    def _address(self, page_id: int) -> int:
        return page_id * self._block_size

    @property
    def stats(self):
        return self._cache.stats

    @property
    def capacity_entries(self) -> int:
        return self.config.size_bytes // self._block_size

    def lookup(self, page_id: int) -> Optional[CounterBlock]:
        """Probe for a page's counters (counts hit/miss)."""
        line = self._cache.lookup(self._address(page_id))
        return None if line is None else line.payload

    def peek(self, page_id: int) -> Optional[CounterBlock]:
        """Probe without stats side effects."""
        line = self._cache.peek(self._address(page_id))
        return None if line is None else line.payload

    def fill(self, page_id: int, block: CounterBlock, *,
             dirty: bool = False) -> Optional[CounterEviction]:
        """Install a counter block; returns the victim if one was evicted."""
        evicted = self._cache.fill(self._address(page_id), block, dirty=dirty)
        if evicted is None:
            return None
        return CounterEviction(page_id=evicted.address // self._block_size,
                               block=evicted.payload, dirty=evicted.dirty)

    def lookup_many(self, page_ids: Iterable[int]) -> CounterLookup:
        """Probe a batch of pages, partitioning into hit and miss sets.

        Every element counts as one probe (stats advance exactly as the
        equivalent sequence of scalar :meth:`lookup` calls would);
        repeated ids probe repeatedly, matching scalar behaviour.
        """
        result = CounterLookup()
        for page_id in page_ids:
            block = self.lookup(page_id)
            if block is not None:
                result.hits[page_id] = block
            elif page_id not in result.misses:
                result.misses.append(page_id)
        return result

    def fill_many(self, blocks: Iterable[Tuple[int, CounterBlock]], *,
                  dirty: bool = False) -> List[CounterEviction]:
        """Install a batch of counter blocks in order; returns victims."""
        evictions = []
        for page_id, block in blocks:
            evicted = self.fill(page_id, block, dirty=dirty)
            if evicted is not None:
                evictions.append(evicted)
        return evictions

    def record_hits(self, page_id: int, count: int) -> None:
        """Bulk hit accounting for a run of repeated probes of one
        resident page (see :meth:`SetAssociativeCache.record_hits`)."""
        self._cache.record_hits(self._address(page_id), count)

    def mark_dirty(self, page_id: int) -> None:
        self._cache.mark_dirty(self._address(page_id))

    def invalidate(self, page_id: int) -> Optional[CounterEviction]:
        """Drop a page's counters (remote-core invalidation in Figure 6)."""
        evicted = self._cache.invalidate(self._address(page_id))
        if evicted is None:
            return None
        return CounterEviction(page_id=page_id, block=evicted.payload,
                               dirty=evicted.dirty)

    def dirty_entries(self) -> List[Tuple[int, CounterBlock]]:
        """All dirty (page_id, counters) pairs — what a battery flush saves."""
        dirty = []
        for address in self._cache.resident_addresses():
            line = self._cache.peek(address)
            if line is not None and line.dirty:
                dirty.append((address // self._block_size, line.payload))
        return dirty

    def flush(self, sink: Optional[Callable[[int, CounterBlock], None]]
              = None) -> List[CounterEviction]:
        """Mark every dirty entry clean, returning what was flushed.

        Models the battery-backed flush of the write-back counter cache
        on power loss (section 7.1). The result has the same structured
        shape as :meth:`invalidate`: a :class:`CounterEviction` per
        flushed block (``dirty=True`` — they were dirty when flushed),
        in ascending page order. The caller persists them.

        The deprecated per-entry ``sink`` callable was removed; passing
        one raises ``TypeError``.
        """
        if sink is not None:
            raise TypeError(
                "CounterCache.flush(sink) was removed; call flush() and "
                "persist the returned CounterEviction list instead")
        flushed: List[CounterEviction] = []
        for address in self._cache.resident_addresses():
            line = self._cache.peek(address)
            if line is not None and line.dirty:
                page_id = address // self._block_size
                line.dirty = False
                flushed.append(CounterEviction(page_id=page_id,
                                               block=line.payload,
                                               dirty=True))
        return flushed

    def __len__(self) -> int:
        return len(self._cache)
