"""A set-associative cache with pluggable replacement.

The cache stores tags plus optional per-line payloads (the hierarchy
keeps payloads only at the last level; the counter cache stores counter
blocks). Evictions report the victim so the owner can write back dirty
state; invalidation supports both clean drops (shredding) and flushing.

Set state is array-backed: :attr:`SetAssociativeCache.way_tags` is a
flat ``array('q')`` of block numbers indexed ``set * assoc + way``
(``-1`` = empty way), kept in lockstep with the per-line objects, and
the bound replacement policy keeps a parallel flat stamp array. The
bulk hierarchy walk and the optional numpy kernels read these arrays
directly (``numpy.frombuffer`` gives a zero-copy int64 view); the
``_index`` dict stays as the O(1) scalar probe path.
"""

from __future__ import annotations

import sys
from array import array
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..config import CacheConfig
from ..errors import ConfigError
from .replacement import ReplacementPolicy, make_replacement

#: ``slots=True`` for the per-line hot allocations where the runtime
#: supports it (3.10+); plain dataclasses on 3.9.
_SLOTS = {"slots": True} if sys.version_info >= (3, 10) else {}


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for one cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    dirty_evictions: int = 0
    invalidations: int = 0
    fills: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


@dataclass(**_SLOTS)
class CacheLine:
    """One resident line: tag plus dirty bit and optional payload."""

    tag: int
    dirty: bool = False
    payload: Any = None


@dataclass(**_SLOTS)
class Eviction:
    """A victim pushed out by a fill."""

    address: int
    dirty: bool
    payload: Any = None


class SetAssociativeCache:
    """Tag store with per-set ways and a replacement policy.

    Addresses are block-aligned byte addresses; the cache derives set
    index and tag from the block number. ``key_shift`` lets specialised
    caches (the counter cache) index by something other than 64 B blocks.
    """

    def __init__(self, config: CacheConfig,
                 policy: Optional[ReplacementPolicy] = None) -> None:
        self.config = config
        self.name = config.name
        self.block_size = config.block_size
        self.num_sets = config.num_sets
        self.associativity = config.associativity
        if self.num_sets < 1:
            raise ConfigError(f"{config.name}: zero sets")
        self.policy = policy if policy is not None else make_replacement(config.replacement)
        self.policy.bind(self.num_sets, self.associativity)
        self.latency_cycles = config.latency_cycles
        self.stats = CacheStats()
        # sets[set_index][way] -> CacheLine or None
        self._sets: List[List[Optional[CacheLine]]] = [
            [None] * self.associativity for _ in range(self.num_sets)
        ]
        # Flat tag store: way_tags[set * assoc + way] = block number, -1
        # when the way is empty. Mirrors _sets exactly.
        self.way_tags = array("q", [-1]) * (self.num_sets * self.associativity)
        # Lines resident per set; a full set (the steady state) skips
        # the empty-way scan entirely on fill.
        self._set_fill = array("i", bytes(4 * self.num_sets))
        self._all_ways = list(range(self.associativity))
        # Fast lookup: block_number -> (set_index, way)
        self._index: Dict[int, Tuple[int, int]] = {}

    # -- address mapping ---------------------------------------------------

    def _block_number(self, address: int) -> int:
        return address // self.block_size

    def _set_index(self, block_number: int) -> int:
        return block_number % self.num_sets

    def _address_of(self, block_number: int) -> int:
        return block_number * self.block_size

    # -- queries -------------------------------------------------------------

    def contains(self, address: int) -> bool:
        return self._block_number(address) in self._index

    def lookup(self, address: int, *, touch: bool = True) -> Optional[CacheLine]:
        """Probe for a line; updates hit/miss stats and recency."""
        block = self._block_number(address)
        location = self._index.get(block)
        if location is None:
            self.stats.misses += 1
            return None
        set_index, way = location
        line = self._sets[set_index][way]
        assert line is not None
        self.stats.hits += 1
        if touch:
            self.policy.touch(set_index, way)
        return line

    def peek(self, address: int) -> Optional[CacheLine]:
        """Probe without stats or recency effects."""
        location = self._index.get(self._block_number(address))
        if location is None:
            return None
        return self._sets[location[0]][location[1]]

    def record_hits(self, address: int, count: int) -> None:
        """Account ``count`` repeated hits on a resident line at once.

        The batched access engine uses this for a run of back-to-back
        probes of one line: the stats advance exactly as ``count``
        scalar lookups would, and recency advances through
        :meth:`~repro.cache.replacement.ReplacementPolicy.touch_many`,
        which leaves the policy's stamps identical to ``count`` scalar
        touches (repeated touches of one line with nothing in between
        cannot reorder the other ways).
        """
        if count <= 0:
            return
        location = self._index.get(self._block_number(address))
        if location is None:
            raise ConfigError(f"{self.name}: record_hits on a non-resident "
                              f"line {address:#x}")
        self.stats.hits += count
        self.policy.touch_many(location[0], location[1], count)

    # -- fills and evictions ---------------------------------------------------

    def fill(self, address: int, payload: Any = None, *,
             dirty: bool = False) -> Optional[Eviction]:
        """Install a line, evicting a victim if the set is full.

        Returns the eviction (if any) so the caller can handle dirty
        write-back. Filling an already-present line updates it in place.
        """
        block = self._block_number(address)
        existing = self._index.get(block)
        if existing is not None:
            set_index, way = existing
            line = self._sets[set_index][way]
            assert line is not None
            line.payload = payload
            line.dirty = line.dirty or dirty
            self.policy.touch(set_index, way)
            return None

        set_index = block % self.num_sets
        ways = self._sets[set_index]
        base = set_index * self.associativity
        way_tags = self.way_tags

        eviction = None
        if self._set_fill[set_index] == self.associativity:
            # Steady state: set is full, go straight to the victim.
            victim_way = self.policy.victim(set_index, self._all_ways)
            victim = ways[victim_way]
            assert victim is not None
            self.stats.evictions += 1
            if victim.dirty:
                self.stats.dirty_evictions += 1
            eviction = Eviction(address=victim.tag * self.block_size,
                                dirty=victim.dirty, payload=victim.payload)
            del self._index[victim.tag]
            self.policy.forget(set_index, victim_way)
            # Reuse the victim line object in place; peeked lines are
            # consumed before the next fill, never held across one.
            victim.tag = block
            victim.dirty = dirty
            victim.payload = payload
        else:
            victim_way = 0
            for way in range(self.associativity):
                if way_tags[base + way] < 0:
                    victim_way = way
                    break
            ways[victim_way] = CacheLine(tag=block, dirty=dirty, payload=payload)
            self._set_fill[set_index] += 1

        way_tags[base + victim_way] = block
        self._index[block] = (set_index, victim_way)
        self.policy.touch(set_index, victim_way)
        self.stats.fills += 1
        return eviction

    def fill_tag(self, address: int) -> int:
        """Install a clean tag-only line; returns the victim's block
        address, or ``-1`` when nothing was evicted.

        Equivalent to ``fill(address)`` — same stats, policy and set
        state — minus the :class:`Eviction` materialisation. For the
        tag-only upper levels (payloads live at L4 only, lines are
        never dirty) the victim's address is all a caller can use.
        """
        block = address // self.block_size
        existing = self._index.get(block)
        if existing is not None:
            set_index, way = existing
            line = self._sets[set_index][way]
            line.payload = None
            self.policy.touch(set_index, way)
            return -1

        set_index = block % self.num_sets
        ways = self._sets[set_index]
        base = set_index * self.associativity
        way_tags = self.way_tags

        victim_address = -1
        if self._set_fill[set_index] == self.associativity:
            victim_way = self.policy.victim(set_index, self._all_ways)
            victim = ways[victim_way]
            self.stats.evictions += 1
            if victim.dirty:
                self.stats.dirty_evictions += 1
            victim_address = victim.tag * self.block_size
            del self._index[victim.tag]
            self.policy.forget(set_index, victim_way)
            victim.tag = block
            victim.dirty = False
            victim.payload = None
        else:
            victim_way = 0
            for way in range(self.associativity):
                if way_tags[base + way] < 0:
                    victim_way = way
                    break
            ways[victim_way] = CacheLine(tag=block)
            self._set_fill[set_index] += 1

        way_tags[base + victim_way] = block
        self._index[block] = (set_index, victim_way)
        self.policy.touch(set_index, victim_way)
        self.stats.fills += 1
        return victim_address

    def mark_dirty(self, address: int) -> None:
        line = self.peek(address)
        if line is not None:
            line.dirty = True

    def invalidate(self, address: int) -> Optional[Eviction]:
        """Drop a line if present; returns its state for optional flush."""
        block = self._block_number(address)
        location = self._index.pop(block, None)
        if location is None:
            return None
        set_index, way = location
        line = self._sets[set_index][way]
        assert line is not None
        self._sets[set_index][way] = None
        self.way_tags[set_index * self.associativity + way] = -1
        self._set_fill[set_index] -= 1
        self.policy.forget(set_index, way)
        self.stats.invalidations += 1
        return Eviction(address=self._address_of(block), dirty=line.dirty,
                        payload=line.payload)

    def drop(self, address: int) -> None:
        """Invalidate without materialising the victim's state.

        Identical stats and set state to :meth:`invalidate`; hot paths
        that ignore the returned :class:`Eviction` (tag-only upper-level
        back-invalidation) use this to skip the allocation.
        """
        block = address // self.block_size
        location = self._index.pop(block, None)
        if location is None:
            return
        set_index, way = location
        self._sets[set_index][way] = None
        self.way_tags[set_index * self.associativity + way] = -1
        self._set_fill[set_index] -= 1
        self.policy.forget(set_index, way)
        self.stats.invalidations += 1

    def invalidate_range(self, start: int, length: int) -> List[Eviction]:
        """Invalidate every resident line overlapping [start, start+length)."""
        evictions = []
        first_block = start // self.block_size
        last_block = (start + length - 1) // self.block_size
        for block in range(first_block, last_block + 1):
            evicted = self.invalidate(block * self.block_size)
            if evicted is not None:
                evictions.append(evicted)
        return evictions

    def resident_addresses(self) -> List[int]:
        """Block addresses of all resident lines (for inspection/tests)."""
        return sorted(self._address_of(block) for block in self._index)

    def flush_all(self) -> List[Eviction]:
        """Invalidate everything, returning dirty victims for write-back."""
        dirty = []
        for address in self.resident_addresses():
            evicted = self.invalidate(address)
            if evicted is not None and evicted.dirty:
                dirty.append(evicted)
        return dirty

    def __len__(self) -> int:
        return len(self._index)
