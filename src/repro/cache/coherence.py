"""MESI coherence directory over the per-core private caches.

The coherence unit is one core's private L1+L2 pair. A directory entry
tracks, per block, which cores hold it and in which MESI state. The
directory serves three purposes in the reproduction:

* correctness of multi-core sharing (single writer / multiple readers),
* accounting of invalidation traffic, and
* the shred-command datapath: step 2 of Figure 6 sends invalidations for
  a whole page to every core's caches (and the counter cache), which the
  directory performs.
"""

from __future__ import annotations

import enum
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Set

from ..errors import SimulationError

#: ``slots=True`` for the hot per-block entries on 3.10+; plain
#: dataclasses on 3.9.
_SLOTS = {"slots": True} if sys.version_info >= (3, 10) else {}


class MESIState(enum.Enum):
    MODIFIED = "M"
    EXCLUSIVE = "E"
    SHARED = "S"
    INVALID = "I"


@dataclass(**_SLOTS)
class DirectoryEntry:
    """Who caches one block, and how."""

    sharers: Set[int] = field(default_factory=set)
    owner: int = -1                      # core id with M/E, -1 when shared/none
    state: MESIState = MESIState.INVALID


@dataclass
class CoherenceStats:
    invalidations_sent: int = 0
    ownership_transfers: int = 0
    writebacks_forced: int = 0
    read_misses_served_by_owner: int = 0


class CoherenceDirectory:
    """Directory-based MESI for N private cache units."""

    def __init__(self, num_cores: int) -> None:
        self.num_cores = num_cores
        self._entries: Dict[int, DirectoryEntry] = {}
        self.stats = CoherenceStats()

    def _entry(self, block_address: int) -> DirectoryEntry:
        entry = self._entries.get(block_address)
        if entry is None:
            entry = DirectoryEntry()
            self._entries[block_address] = entry
        return entry

    def state_of(self, block_address: int, core: int) -> MESIState:
        entry = self._entries.get(block_address)
        if entry is None or core not in entry.sharers:
            return MESIState.INVALID
        if entry.owner == core:
            return entry.state
        return MESIState.SHARED

    def sharers_of(self, block_address: int) -> Set[int]:
        entry = self._entries.get(block_address)
        return set(entry.sharers) if entry else set()

    # -- processor-side events ------------------------------------------------

    def read(self, block_address: int, core: int) -> List[int]:
        """Core ``core`` reads the block.

        Returns the list of cores whose copy must be downgraded (an M/E
        owner supplying the data transitions to S; its dirty data is
        flushed to the shared levels by the hierarchy).
        """
        entry = self._entry(block_address)
        downgraded: List[int] = []
        if core in entry.sharers and (entry.owner == core or
                                      entry.state is MESIState.SHARED):
            return downgraded
        if entry.owner >= 0 and entry.owner != core:
            downgraded.append(entry.owner)
            if entry.state is MESIState.MODIFIED:
                self.stats.writebacks_forced += 1
            self.stats.read_misses_served_by_owner += 1
            entry.owner = -1
            entry.state = MESIState.SHARED
        entry.sharers.add(core)
        if len(entry.sharers) == 1:
            entry.owner = core
            entry.state = MESIState.EXCLUSIVE
        else:
            entry.owner = -1
            entry.state = MESIState.SHARED
        return downgraded

    def write(self, block_address: int, core: int) -> List[int]:
        """Core ``core`` writes the block; returns cores to invalidate."""
        entry = self._entry(block_address)
        invalidate = [c for c in entry.sharers if c != core]
        if invalidate:
            self.stats.invalidations_sent += len(invalidate)
        if entry.owner != core and entry.owner >= 0:
            self.stats.ownership_transfers += 1
        entry.sharers = {core}
        entry.owner = core
        entry.state = MESIState.MODIFIED
        return invalidate

    def evicted(self, block_address: int, core: int) -> None:
        """A private cache dropped its copy (eviction or invalidation)."""
        entry = self._entries.get(block_address)
        if entry is None:
            return
        entry.sharers.discard(core)
        if entry.owner == core:
            entry.owner = -1
            entry.state = MESIState.SHARED if entry.sharers else MESIState.INVALID
        if not entry.sharers:
            del self._entries[block_address]

    def invalidate_block(self, block_address: int) -> List[int]:
        """Drop the block everywhere (shred step 2); returns prior sharers."""
        entry = self._entries.pop(block_address, None)
        if entry is None:
            return []
        self.stats.invalidations_sent += len(entry.sharers)
        return sorted(entry.sharers)

    # -- invariant checking ------------------------------------------------------

    def check_invariants(self) -> None:
        """Raise if any entry violates the MESI single-writer invariant."""
        for address, entry in self._entries.items():
            if entry.state in (MESIState.MODIFIED, MESIState.EXCLUSIVE):
                if entry.owner < 0 or len(entry.sharers) != 1:
                    raise SimulationError(
                        f"block {address:#x}: {entry.state.value} state with "
                        f"sharers={sorted(entry.sharers)} owner={entry.owner}")
            if entry.state is MESIState.SHARED and entry.owner >= 0:
                raise SimulationError(
                    f"block {address:#x}: SHARED but owner={entry.owner}")
            if not entry.sharers:
                raise SimulationError(f"block {address:#x}: empty entry retained")
