"""Cache substrate: set-associative caches, MESI coherence, hierarchy.

The paper's system (Table 1) has a 4-level hierarchy: private L1/L2 per
core, shared L3/L4, 64 B blocks, LRU, MESI coherence. The hierarchy here
is inclusive with back-invalidation; authoritative data for the whole
hierarchy is kept at the last level (upper levels are tag-only), which
preserves functional correctness and hit/miss timing while keeping the
model fast. The counter (IV) cache is a specialised cache over per-page
counter blocks.
"""

from .replacement import ReplacementPolicy, LRUPolicy, FIFOPolicy, RandomPolicy, make_replacement
from .cache import SetAssociativeCache, CacheStats
from .coherence import MESIState, CoherenceDirectory
from .hierarchy import (BulkAccessResult, CacheHierarchy, HierarchyAccess,
                        MemoryFetch, PageInvalidation)
from .counter_cache import CounterCache

__all__ = [
    "BulkAccessResult",
    "CacheHierarchy",
    "CacheStats",
    "CoherenceDirectory",
    "CounterCache",
    "FIFOPolicy",
    "HierarchyAccess",
    "LRUPolicy",
    "MESIState",
    "MemoryFetch",
    "PageInvalidation",
    "RandomPolicy",
    "ReplacementPolicy",
    "SetAssociativeCache",
    "make_replacement",
]
