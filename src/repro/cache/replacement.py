"""Replacement policies for set-associative caches.

Each policy manages victim selection within one cache (all sets). The
interface is deliberately tiny — touch on every access, choose a victim
among the valid ways of a set — so policies stay interchangeable.

Recency state is stored two ways. A standalone policy (constructed
directly, never attached to a cache) keeps a ``(set, way) -> stamp``
dict. A policy bound to a cache via :meth:`ReplacementPolicy.bind`
switches to a flat ``array('q')`` of stamps indexed ``set * assoc +
way`` — the array-backed set state the bulk hierarchy walk
(:meth:`~repro.cache.hierarchy.CacheHierarchy.access_many`) iterates
over in one pass, and a zero-copy view target for the optional numpy
kernels. Both representations produce identical victims: a stamp of
``0`` means "never touched", and ties break on the lowest way index
(matching ``min`` over ways in ascending order).
"""

from __future__ import annotations

import abc
import random
from array import array
from typing import Dict, List, Optional, Tuple

from ..errors import ConfigError


class ReplacementPolicy(abc.ABC):
    """Victim selection strategy for one cache."""

    name = "abstract"

    #: Flat per-(set, way) stamp array once bound to a cache geometry;
    #: ``None`` while unbound (dict-backed standalone use).
    stamps: Optional[array] = None

    def bind(self, num_sets: int, associativity: int) -> None:
        """Attach the policy to a cache geometry, switching recency
        state to a flat stamp array (default: no state, nothing to do)."""

    @abc.abstractmethod
    def touch(self, set_index: int, way: int) -> None:
        """Record a hit or fill of ``way`` in ``set_index``."""

    def touch_many(self, set_index: int, way: int, count: int) -> None:
        """Record ``count`` back-to-back touches of one way.

        With nothing in between, repeated touches of the same way are
        order-equivalent to one (the relative recency of every other
        way is unchanged), but LRU's clock must still advance so stamp
        values match ``count`` scalar touches exactly.
        """
        for _ in range(count):
            self.touch(set_index, way)

    @abc.abstractmethod
    def victim(self, set_index: int, ways: List[int]) -> int:
        """Choose which of the candidate ``ways`` to evict."""

    def forget(self, set_index: int, way: int) -> None:
        """A line was invalidated; drop its bookkeeping (optional)."""


class _StampPolicy(ReplacementPolicy):
    """Shared machinery for stamp-ordered policies (LRU, FIFO)."""

    def __init__(self) -> None:
        self._clock = 0
        self._assoc = 0
        self.stamps: Optional[array] = None
        self._dict: Dict[Tuple[int, int], int] = {}

    def bind(self, num_sets: int, associativity: int) -> None:
        if self._dict:
            raise ConfigError(f"{self.name}: cannot bind a policy that "
                              "already carries standalone state")
        self._assoc = associativity
        self.stamps = array("q", bytes(8 * num_sets * associativity))

    def _stamp(self, set_index: int, way: int) -> int:
        if self.stamps is not None:
            return self.stamps[set_index * self._assoc + way]
        return self._dict.get((set_index, way), 0)

    def victim(self, set_index: int, ways: List[int]) -> int:
        if self.stamps is not None:
            base = set_index * self._assoc
            stamps = self.stamps
            best = ways[0]
            best_stamp = stamps[base + best]
            for way in ways[1:]:
                stamp = stamps[base + way]
                if stamp < best_stamp:
                    best, best_stamp = way, stamp
            return best
        return min(ways, key=lambda w: self._dict.get((set_index, w), 0))

    def forget(self, set_index: int, way: int) -> None:
        if self.stamps is not None:
            self.stamps[set_index * self._assoc + way] = 0
        else:
            self._dict.pop((set_index, way), None)


class LRUPolicy(_StampPolicy):
    """Least-recently-used: victim is the way with the oldest touch."""

    name = "lru"

    def touch(self, set_index: int, way: int) -> None:
        self._clock += 1
        if self.stamps is not None:
            self.stamps[set_index * self._assoc + way] = self._clock
        else:
            self._dict[(set_index, way)] = self._clock

    def touch_many(self, set_index: int, way: int, count: int) -> None:
        if count <= 0:
            return
        self._clock += count
        if self.stamps is not None:
            self.stamps[set_index * self._assoc + way] = self._clock
        else:
            self._dict[(set_index, way)] = self._clock


class FIFOPolicy(_StampPolicy):
    """First-in-first-out: victim is the way filled earliest."""

    name = "fifo"

    def touch(self, set_index: int, way: int) -> None:
        # Only the fill establishes order; hits do not refresh it.
        if self._stamp(set_index, way):
            return
        self._clock += 1
        if self.stamps is not None:
            self.stamps[set_index * self._assoc + way] = self._clock
        else:
            self._dict[(set_index, way)] = self._clock

    def touch_many(self, set_index: int, way: int, count: int) -> None:
        if count > 0:
            self.touch(set_index, way)


class RandomPolicy(ReplacementPolicy):
    """Uniformly random victim (seeded for reproducibility)."""

    name = "random"

    def __init__(self, seed: int = 0xC0FFEE) -> None:
        self._rng = random.Random(seed)

    def touch(self, set_index: int, way: int) -> None:
        pass

    def touch_many(self, set_index: int, way: int, count: int) -> None:
        pass

    def victim(self, set_index: int, ways: List[int]) -> int:
        return self._rng.choice(ways)


def make_replacement(name: str) -> ReplacementPolicy:
    """Instantiate a replacement policy by config name."""
    if name == "lru":
        return LRUPolicy()
    if name == "fifo":
        return FIFOPolicy()
    if name == "random":
        return RandomPolicy()
    raise ConfigError(f"unknown replacement policy {name!r}")
