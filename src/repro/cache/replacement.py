"""Replacement policies for set-associative caches.

Each policy manages victim selection within one cache (all sets). The
interface is deliberately tiny — touch on every access, choose a victim
among the valid ways of a set — so policies stay interchangeable.
"""

from __future__ import annotations

import abc
import random
from typing import Dict, List, Tuple

from ..errors import ConfigError


class ReplacementPolicy(abc.ABC):
    """Victim selection strategy for one cache."""

    name = "abstract"

    @abc.abstractmethod
    def touch(self, set_index: int, way: int) -> None:
        """Record a hit or fill of ``way`` in ``set_index``."""

    @abc.abstractmethod
    def victim(self, set_index: int, ways: List[int]) -> int:
        """Choose which of the candidate ``ways`` to evict."""

    def forget(self, set_index: int, way: int) -> None:
        """A line was invalidated; drop its bookkeeping (optional)."""


class LRUPolicy(ReplacementPolicy):
    """Least-recently-used: victim is the way with the oldest touch."""

    name = "lru"

    def __init__(self) -> None:
        self._clock = 0
        self._last_use: Dict[Tuple[int, int], int] = {}

    def touch(self, set_index: int, way: int) -> None:
        self._clock += 1
        self._last_use[(set_index, way)] = self._clock

    def victim(self, set_index: int, ways: List[int]) -> int:
        return min(ways, key=lambda w: self._last_use.get((set_index, w), 0))

    def forget(self, set_index: int, way: int) -> None:
        self._last_use.pop((set_index, way), None)


class FIFOPolicy(ReplacementPolicy):
    """First-in-first-out: victim is the way filled earliest."""

    name = "fifo"

    def __init__(self) -> None:
        self._clock = 0
        self._fill_time: Dict[Tuple[int, int], int] = {}

    def touch(self, set_index: int, way: int) -> None:
        # Only the fill establishes order; hits do not refresh it.
        key = (set_index, way)
        if key not in self._fill_time:
            self._clock += 1
            self._fill_time[key] = self._clock

    def victim(self, set_index: int, ways: List[int]) -> int:
        return min(ways, key=lambda w: self._fill_time.get((set_index, w), 0))

    def forget(self, set_index: int, way: int) -> None:
        self._fill_time.pop((set_index, way), None)


class RandomPolicy(ReplacementPolicy):
    """Uniformly random victim (seeded for reproducibility)."""

    name = "random"

    def __init__(self, seed: int = 0xC0FFEE) -> None:
        self._rng = random.Random(seed)

    def touch(self, set_index: int, way: int) -> None:
        pass

    def victim(self, set_index: int, ways: List[int]) -> int:
        return self._rng.choice(ways)


def make_replacement(name: str) -> ReplacementPolicy:
    """Instantiate a replacement policy by config name."""
    if name == "lru":
        return LRUPolicy()
    if name == "fifo":
        return FIFOPolicy()
    if name == "random":
        return RandomPolicy()
    raise ConfigError(f"unknown replacement policy {name!r}")
