"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``describe``
    Print the Table 1 system configuration.
``list-benchmarks``
    List the SPEC models and PowerGraph applications.
``compare``
    Run one workload on the baseline and Silent Shredder systems and
    print the four headline metrics.
``figure``
    Regenerate one of the paper's figures/tables and print its data.
``worker serve``
    Run a distributed experiment worker — a TCP task server, or (with
    ``--register HOST:PORT``) a dial-out worker registered with an
    experiment cluster dispatcher.
``cluster serve`` / ``status`` / ``drain`` / ``shutdown`` / ``keygen``
    Run and administer the long-lived multi-tenant experiment cluster
    (``repro.exec.cluster``); see ``docs/SERVICE.md``.
``top``
    Live cluster introspection: poll a dispatcher's status endpoint
    and refresh per-client queue depth, throughput, worker health, and
    cache hit rate in-terminal.
``events``
    Run one workload and print its flight-recorder event log (shreds,
    zero-fill elisions, counter overflows, ...) as canonical
    JSON-lines, optionally filtered with ``--match``.
``cache sweep``
    Apply LRU size/age bounds to the persistent result cache.
``stats``
    Render a ``--emit-metrics`` JSON-lines dump as a table,
    Prometheus text, or a chrome://tracing span trace.
``analyze``
    Run the repo's static invariant checker (``REPRO###`` rules);
    see ``docs/ANALYSIS.md``. ``--import-graph dot`` exports the
    layered import graph instead.
``bench``
    Run named performance scenarios through the scalar and batch
    access engines, write ``BENCH_<scenario>.json``, and optionally
    gate against a committed baseline (``--compare``); see
    ``docs/BENCHMARKS.md``.
"""

from __future__ import annotations

import argparse
import contextlib
import os
import sys
from typing import List, Optional

from .analysis import (ablation_policies, fig12_counter_cache_sweep,
                       fig4_memset, fig5_zeroing_writes, render_table,
                       rows_to_csv, run_pair, table2_mechanisms)
from .analysis.figures import fig8_to_11_study, study_summary
from .config import bench_config, default_config
from .errors import BackendError
from .exec import (ExecutionBackend, ProgressEvent, Runner,
                   powergraph_experiment, spec_experiment)
from .workloads import SPEC_BENCHMARKS

POWERGRAPH_NAMES = ("PAGERANK", "SIMPLE_COLORING", "KCORE")

FIGURES = ("fig4", "fig5", "fig8", "fig9", "fig10", "fig11", "fig12",
           "table2", "policies")


def _cmd_describe(args: argparse.Namespace) -> int:
    config = default_config() if args.full else bench_config()
    title = "Table 1 (full-size)" if args.full else "benchmark (scaled) system"
    print(f"# {title}")
    print(config.describe())
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    print("SPEC CPU2006 models:")
    for name in SPEC_BENCHMARKS:
        print(f"  {name}")
    print("PowerGraph applications:")
    for name in POWERGRAPH_NAMES:
        print(f"  {name}")
    return 0


def _cli_progress(event: ProgressEvent) -> None:
    suffix = "" if event.source == "worker" else f" ({event.source})"
    print(f"[{event.completed}/{event.total}] {event.label}{suffix}",
          file=sys.stderr, flush=True)


@contextlib.contextmanager
def _runner_context(args: argparse.Namespace):
    """The execution engine for a CLI invocation, with lifecycle.

    ``--backend SPEC`` picks any backend by spec string (grammar in
    :mod:`repro.exec.spec`); ``--workers host:port,...`` dispatches to
    an existing worker fleet; ``--spawn-local N`` forks N workers on
    this machine and tears them down afterwards; otherwise ``--jobs``
    picks serial or a local fork pool. On exit, ``--emit-metrics
    PATH`` writes the run's merged registry (simulation metrics folded
    in from every completed report, plus batch/dispatch telemetry) and
    recorded spans as a JSON-lines dump.
    """
    from .obs import MetricsRegistry, default_tracer, write_jsonl
    spec = getattr(args, "backend", None)
    workers = getattr(args, "workers", None)
    spawn_local = getattr(args, "spawn_local", None)
    exclusive = [flag for flag, value in
                 (("--backend", spec), ("--workers", workers),
                  ("--spawn-local", spawn_local)) if value]
    if len(exclusive) > 1:
        raise BackendError(
            f"pass at most one of {', '.join(exclusive)}")
    metrics = MetricsRegistry()
    pool = []
    try:
        if spec:
            backend = ExecutionBackend.from_spec(
                spec, metrics=metrics, task_timeout=args.task_timeout)
            runner = Runner(backend=backend, use_cache=not args.no_cache,
                            progress=_cli_progress, metrics=metrics)
        elif workers or spawn_local:
            if spawn_local:
                from .exec.worker import spawn_local_workers
                pool = spawn_local_workers(spawn_local)
                addresses = [worker.endpoint for worker in pool]
            else:
                addresses = [part.strip() for part in workers.split(",")
                             if part.strip()]
            from .exec import DistributedBackend
            backend = DistributedBackend(addresses,
                                         task_timeout=args.task_timeout,
                                         metrics=metrics)
            runner = Runner(backend=backend, use_cache=not args.no_cache,
                            progress=_cli_progress, metrics=metrics)
        else:
            progress = _cli_progress if args.jobs > 1 else None
            runner = Runner(jobs=args.jobs, use_cache=not args.no_cache,
                            progress=progress, metrics=metrics)
        yield runner
        emit = getattr(args, "emit_metrics", None)
        if emit:
            with open(emit, "w") as stream:
                write_jsonl(metrics.snapshot(), stream,
                            spans=default_tracer().snapshot(),
                            meta={"command": args.command,
                                  "backend": runner.backend.describe()})
            print(f"(metrics written to {emit})", file=sys.stderr)
    finally:
        for worker in pool:
            worker.terminate()


def _make_runner(args: argparse.Namespace) -> Runner:
    """Deprecated shim kept for scripts importing the old helper."""
    with contextlib.ExitStack() as stack:
        return stack.enter_context(_runner_context(args))


def _cmd_compare(args: argparse.Namespace) -> int:
    name = args.benchmark.upper()
    if name in SPEC_BENCHMARKS:
        experiment = spec_experiment(name, cores=args.cores, scale=args.scale)
    elif name in POWERGRAPH_NAMES:
        experiment = powergraph_experiment(name, num_nodes=args.nodes)
    else:
        print(f"unknown benchmark {args.benchmark!r}; try list-benchmarks",
              file=sys.stderr)
        return 2
    with _runner_context(args) as runner:
        result = run_pair(experiment, runner=runner)
    print(render_table([result.row()],
                       title=f"{name} — baseline vs Silent Shredder"))
    return 0


def _emit_rows(args: argparse.Namespace, rows, title: str) -> None:
    print(render_table(rows, title=title))
    if getattr(args, "csv", None):
        with open(args.csv, "w", newline="") as stream:
            rows_to_csv(rows, stream)
        print(f"(csv written to {args.csv})")


def _cmd_figure(args: argparse.Namespace) -> int:
    which = args.name.lower()
    from .obs import span
    with _runner_context(args) as runner, \
            span(f"figure.{which}", attrs={"scale": args.scale}):
        return _run_figure(args, which, runner)


def _run_figure(args: argparse.Namespace, which: str, runner: Runner) -> int:
    if which == "fig4":
        sizes = [256 << 10, 512 << 10, 1 << 20, 2 << 20]
        rows = fig4_memset(sizes)
        _emit_rows(args, rows, "Figure 4 — memset timing")
    elif which == "fig5":
        rows = fig5_zeroing_writes(list(POWERGRAPH_NAMES), num_nodes=1200)
        _emit_rows(args, rows, "Figure 5 — zeroing writes")
    elif which in ("fig8", "fig9", "fig10", "fig11"):
        benchmarks = None
        if args.benchmarks:
            benchmarks = [name.strip().upper()
                          for name in args.benchmarks.split(",") if name.strip()]
        results = fig8_to_11_study(benchmarks=benchmarks, scale=args.scale,
                                   cores=args.cores, runner=runner)
        column = {"fig8": ("write_savings_pct", "Figure 8 — write savings"),
                  "fig9": ("read_savings_pct", "Figure 9 — read savings"),
                  "fig10": ("read_speedup", "Figure 10 — read speedup"),
                  "fig11": ("relative_ipc", "Figure 11 — relative IPC")}[which]
        rows = [{"benchmark": r.workload, column[0]: r.row()[column[0]]}
                for r in results]
        _emit_rows(args, rows, column[1])
        summary = study_summary(results)
        print()
        for key, value in summary.items():
            print(f"{key}: {value:.2f}")
    elif which == "fig12":
        sizes = [2 << 10, 4 << 10, 8 << 10, 16 << 10, 32 << 10, 64 << 10]
        rows = fig12_counter_cache_sweep(sizes, scale=args.scale,
                                         runner=runner)
        _emit_rows(args, rows, "Figure 12 — counter cache sweep")
    elif which == "table2":
        rows = table2_mechanisms(runner=runner)
        _emit_rows(args, rows, "Table 2 — mechanisms")
    elif which == "policies":
        rows = ablation_policies(runner=runner)
        _emit_rows(args, rows, "Shred-policy ablation (section 4.2)")
    else:
        print(f"unknown figure {args.name!r}; choose from {FIGURES}",
              file=sys.stderr)
        return 2
    return 0


def _cmd_worker_serve(args: argparse.Namespace) -> int:
    def announce(line: str) -> None:
        print(f"repro worker {line}", flush=True)

    if args.register:
        served = _registered_worker_session(args, announce)
    else:
        from .exec.worker import serve
        served = serve(args.host, args.port, max_tasks=args.max_tasks,
                       cache_dir=args.cache_dir,
                       emit_metrics=args.emit_metrics,
                       metrics_port=args.metrics_port,
                       announce=announce)
    print(f"worker stopped after {served} tasks", file=sys.stderr)
    return 0


def _registered_worker_session(args: argparse.Namespace, announce) -> int:
    """``repro worker serve --register``: dial out to a dispatcher."""
    from .exec.worker import run_registered_worker
    from .obs import MetricsRegistry, write_jsonl
    metrics = MetricsRegistry()
    scrape = None
    if args.metrics_port is not None:
        from .obs import start_metrics_server
        scrape = start_metrics_server(metrics, host=args.host,
                                      port=args.metrics_port)
        announce(f"metrics on http://{scrape.endpoint}/metrics")
    served = 0
    try:
        served = run_registered_worker(
            args.register, keyfile=args.keyfile, cache_dir=args.cache_dir,
            max_tasks=args.max_tasks, heartbeat=args.heartbeat,
            metrics=metrics, announce=announce)
    except KeyboardInterrupt:   # pragma: no cover - interactive only
        pass
    finally:
        if scrape is not None:
            scrape.close()
        if args.emit_metrics:
            with open(args.emit_metrics, "w") as stream:
                write_jsonl(metrics.snapshot(), stream,
                            meta={"role": "registered-worker",
                                  "dispatcher": args.register,
                                  "tasks_served": served})
    return served


# ---------------------------------------------------------------------------
# Cluster administration
# ---------------------------------------------------------------------------

def _cluster_auth(args: argparse.Namespace):
    if getattr(args, "keyfile", None):
        from .exec.wire import FrameAuth
        return FrameAuth.from_keyfile(args.keyfile)
    return None


def _cmd_cluster_serve(args: argparse.Namespace) -> int:
    from .exec.cluster import ClusterServer
    cache = None
    if args.cache_dir:
        from .exec import ResultCache
        cache = ResultCache(args.cache_dir)
    server = ClusterServer(host=args.host, port=args.port,
                           auth=_cluster_auth(args), cache=cache,
                           task_timeout=args.task_timeout,
                           max_retries=args.max_retries,
                           heartbeat_timeout=args.heartbeat_timeout)
    host, port = server.start()
    print(f"repro cluster listening on {host}:{port}", flush=True)
    scrape = None
    if args.metrics_port is not None:
        from .obs import start_metrics_server
        scrape = start_metrics_server(server.dispatcher.metrics,
                                      host=args.host, port=args.metrics_port)
        print(f"repro cluster metrics on http://{scrape.endpoint}/metrics",
              flush=True)
    try:
        server.wait()
    except KeyboardInterrupt:   # pragma: no cover - interactive only
        pass
    finally:
        server.close()
        if scrape is not None:
            scrape.close()
        if args.emit_metrics:
            from .obs import write_jsonl
            with open(args.emit_metrics, "w") as stream:
                write_jsonl(server.dispatcher.metrics.snapshot(), stream,
                            meta={"role": "cluster-dispatcher",
                                  "endpoint": f"{host}:{port}"})
    print("cluster dispatcher stopped", file=sys.stderr)
    return 0


def _cmd_cluster_status(args: argparse.Namespace) -> int:
    import json

    from .exec.cluster import cluster_status
    status = cluster_status(args.address, auth=_cluster_auth(args))
    json.dump(status, sys.stdout, indent=2, sort_keys=True)
    sys.stdout.write("\n")
    return 0


def _cmd_cluster_drain(args: argparse.Namespace) -> int:
    from .exec.cluster import cluster_drain
    reply = cluster_drain(args.address, auth=_cluster_auth(args),
                          stop_workers=args.stop_workers,
                          timeout=args.task_timeout)
    print(f"cluster drained: {reply.get('completed', 0)} tasks completed "
          f"in {reply.get('duration_s', 0.0):.3f}s")
    return 0


def _cmd_cluster_shutdown(args: argparse.Namespace) -> int:
    from .exec.cluster import cluster_shutdown
    cluster_shutdown(args.address, auth=_cluster_auth(args))
    print("cluster dispatcher asked to stop")
    return 0


def _cmd_cluster_keygen(args: argparse.Namespace) -> int:
    from .exec.wire import FrameAuth
    FrameAuth.generate_keyfile(args.path)
    print(f"cluster key written to {args.path} (mode 0600); distribute it "
          f"to every dispatcher, worker, and client")
    return 0


# ---------------------------------------------------------------------------
# Live cluster introspection (repro top) and the flight recorder (repro
# events)
# ---------------------------------------------------------------------------

def _render_top(status: dict, previous: dict, elapsed: float) -> str:
    """One ``repro top`` frame from a dispatcher status document.

    ``previous`` maps client names to their ``completed`` count at the
    last poll; with ``elapsed`` seconds between polls that yields a
    per-client completion throughput.
    """
    lines = []
    cache = status.get("cache") or {}
    hits = int(cache.get("hits", 0))
    misses = int(cache.get("misses", 0))
    lookups = hits + misses
    hit_rate = f"{hits / lookups:.1%}" if lookups else "n/a"
    state = "draining" if status.get("draining") else "serving"
    lines.append(
        f"cluster {state} — queue {status.get('queue_depth', 0)}, "
        f"inflight {status.get('inflight', 0)}, "
        f"completed {status.get('tasks_completed', 0)}, "
        f"cache hit rate {hit_rate}")
    workers = status.get("workers") or []
    lines.append(f"workers ({len(workers)}):")
    for worker in workers:
        flags = []
        if worker.get("busy"):
            flags.append("busy")
        if worker.get("draining"):
            flags.append("draining")
        idle = worker.get("idle_s")
        health = f"idle {idle:.1f}s" if isinstance(idle, (int, float)) \
            else "?"
        lines.append(f"  {worker.get('name', '?'):24s} "
                     f"completed={worker.get('completed', 0):<6d} "
                     f"{health:12s} {' '.join(flags) or 'idle'}")
    clients = status.get("clients") or []
    lines.append(f"clients ({len(clients)}):")
    for client in clients:
        name = str(client.get("name", "?"))
        completed = int(client.get("completed", 0))
        delta = completed - int(previous.get(name, completed))
        rate = f"{delta / elapsed:6.1f}/s" if elapsed > 0 else "      -"
        lines.append(f"  {name:24s} weight={client.get('weight', 1):<3d} "
                     f"queued={client.get('queued', 0):<6d} "
                     f"done={completed:<6d} {rate}")
    return "\n".join(lines)


def _cmd_top(args: argparse.Namespace) -> int:
    import time

    from .exec.cluster import cluster_status
    auth = _cluster_auth(args)
    previous: dict = {}
    last_poll = None
    shown = 0
    clear = sys.stdout.isatty()
    while True:
        status = cluster_status(args.address, auth=auth)
        now = time.monotonic()
        elapsed = (now - last_poll) if last_poll is not None else 0.0
        frame = _render_top(status, previous, elapsed)
        if clear:
            sys.stdout.write("\x1b[2J\x1b[H")
        print(frame, flush=True)
        previous = {str(c.get("name", "?")): int(c.get("completed", 0))
                    for c in status.get("clients") or []}
        last_poll = now
        shown += 1
        if args.iterations is not None and shown >= args.iterations:
            return 0
        try:
            time.sleep(args.interval)
        except KeyboardInterrupt:   # pragma: no cover - interactive only
            return 0


def _events_experiment(args: argparse.Namespace, name: str):
    """The experiment one ``repro events`` invocation runs.

    The scalar engine can drive the full workloads; a non-scalar engine
    (and the ``STREAM`` pseudo-benchmark) replays the workload as a
    flat access stream through the engine-aware ``access-stream``
    workload, which is the apples-to-apples surface for comparing event
    logs across engines.
    """
    from .exec import Experiment
    if name == "STREAM" or (args.engine != "scalar"
                            and name in SPEC_BENCHMARKS):
        params = {"epoch_length": 256}
        if name == "STREAM":
            params.update(source="synthetic", accesses=args.accesses,
                          shred_fraction=args.shred_fraction)
        else:
            params.update(source=name, scale=args.scale)
        return Experiment(workload="access-stream", params=params,
                          engine=args.engine,
                          name=f"events-{name.lower()}")
    if args.engine != "scalar":
        print(f"benchmark {args.benchmark!r} drives the per-access API and "
              f"cannot run under --engine {args.engine}; use a SPEC name "
              f"or STREAM", file=sys.stderr)
        return None
    if name in SPEC_BENCHMARKS:
        return spec_experiment(name, cores=args.cores, scale=args.scale)
    if name in POWERGRAPH_NAMES:
        return powergraph_experiment(name, num_nodes=args.nodes)
    print(f"unknown benchmark {args.benchmark!r}; try list-benchmarks",
          file=sys.stderr)
    return None


def _cmd_events(args: argparse.Namespace) -> int:
    from .obs import write_events_jsonl
    experiment = _events_experiment(args, args.benchmark.upper())
    if experiment is None:
        return 2
    experiment = experiment.baseline_variant() if args.baseline \
        else experiment.shredder_variant()
    with _runner_context(args) as runner:
        report = runner.run([experiment])[0]
    count = write_events_jsonl(report.events, sys.stdout, match=args.match)
    print(f"({count} of {len(report.events)} recorded events shown)",
          file=sys.stderr)
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    import json

    from .errors import ObservabilityError
    from .obs import (read_jsonl, render_metrics_table, render_spans_table,
                      to_prometheus, to_trace_events, write_jsonl)
    try:
        with open(args.path) as stream:
            dump = read_jsonl(stream)
    except (OSError, ObservabilityError) as error:
        print(f"error: cannot read metrics dump {args.path}: {error}",
              file=sys.stderr)
        return 2
    if args.format == "prom":
        sys.stdout.write(to_prometheus(dump.metrics))
    elif args.format == "jsonl":
        write_jsonl(dump.metrics, sys.stdout, spans=dump.spans,
                    meta=dump.meta)
    elif args.format == "trace":
        json.dump(to_trace_events(dump.spans), sys.stdout)
        sys.stdout.write("\n")
    else:
        print(render_metrics_table(dump.metrics, prefix=args.prefix or "",
                                   title=f"metrics — {args.path}"))
        if dump.spans and not args.prefix:
            print()
            print(render_spans_table(dump.spans, title="spans"))
    return 0


def _changed_displays(root: str) -> Optional[List[str]]:
    """Repo-relative ``.py`` paths changed vs. HEAD (plus untracked).

    Returns ``None`` when git is unavailable or the root is not a work
    tree — the caller turns that into the internal-error exit code.
    """
    import subprocess
    changed: List[str] = []
    for extra in (["diff", "--name-only", "HEAD"],
                  ["ls-files", "--others", "--exclude-standard"]):
        try:
            proc = subprocess.run(
                ["git", "-C", root] + extra, capture_output=True,
                text=True, timeout=30, check=True)
        except (OSError, subprocess.SubprocessError):
            return None
        changed.extend(line.strip() for line in proc.stdout.splitlines()
                       if line.strip())
    return sorted({path for path in changed if path.endswith(".py")})


def _cmd_analyze(args: argparse.Namespace) -> int:
    """Exit 0 clean, 1 violations, 2 internal/usage error."""
    import json

    from .analysis import (Analyzer, render_json, render_sarif, render_text,
                           rule_catalog)
    if args.list_rules:
        for code, entry in rule_catalog().items():
            print(f"{code}  [{entry['pass']}]  {entry['summary']}")
        return 0
    cache_path = None if args.no_cache else args.root
    try:
        if args.import_graph:
            from .analysis.passes.layering import render_import_graph
            analyzer = Analyzer(args.root, select=args.select,
                                ignore=args.ignore)
            sys.stdout.write(
                render_import_graph(analyzer.source_files(args.paths or None),
                                    fmt=args.import_graph))
            return 0
        changed: Optional[List[str]] = None
        if args.changed:
            changed = _changed_displays(args.root)
            if changed is None:
                print("analyze: --changed needs git and a work tree at "
                      f"{args.root!r}", file=sys.stderr)
                return 2
            if not changed:
                print("analyze: no changed .py files")
                return 0
        analyzer = Analyzer(args.root, select=args.select,
                            ignore=args.ignore, cache_path=cache_path)
        report = analyzer.run(args.paths or None)
        if changed is not None:
            # Full (cache-backed) run for whole-project soundness, then
            # scope the *reported* findings to the changed files.
            scope = set(changed)
            report.violations = [violation for violation in report.violations
                                 if violation.path in scope]
    except Exception as error:  # internal error, not a finding
        print(f"analyze: internal error: {error}", file=sys.stderr)
        return 2
    if args.format == "json":
        rendered = json.dumps(render_json(report), indent=2,
                              sort_keys=True) + "\n"
    elif args.format == "sarif":
        rendered = json.dumps(render_sarif(report), indent=2,
                              sort_keys=True) + "\n"
    else:
        rendered = render_text(report) + "\n"
    if args.output:
        with open(args.output, "w", encoding="utf-8") as stream:
            stream.write(rendered)
    else:
        sys.stdout.write(rendered)
    return 0 if report.ok else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    from .errors import ExperimentError
    from .exec.bench import (SCENARIOS, compare_results, load_result,
                             run_scenario, scenario_names, write_result)
    if args.list:
        for name in scenario_names():
            print(f"{name:18s} {SCENARIOS[name].description}")
        return 0
    names = args.scenarios or scenario_names()
    unknown = [name for name in names if name not in SCENARIOS]
    if unknown:
        print(f"error: unknown scenario(s) {', '.join(unknown)}; choose "
              f"from {scenario_names()}", file=sys.stderr)
        return 2
    if args.compare and len(names) != 1:
        print("error: --compare gates exactly one scenario per baseline "
              "file", file=sys.stderr)
        return 2
    tracer = None
    metrics = None
    if args.emit_metrics:
        from .obs import MetricsRegistry, SpanTracer
        tracer = SpanTracer()
        metrics = MetricsRegistry()
    status = 0
    for name in names:
        try:
            result = run_scenario(name, warmup=args.warmup,
                                  repeat=args.repeat, tracer=tracer,
                                  profile_dir=args.profile,
                                  metrics=metrics)
        except ExperimentError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        path = write_result(result, directory=args.output_dir)
        timing = result["timing"]
        summary = " ".join(
            f"{engine}={entry['best_s']:.4f}s"
            for engine, entry in timing.items() if isinstance(entry, dict))
        extra = ""
        for label, key in (("batch", "speedup_batch_over_scalar"),
                           ("vector", "speedup_vector_over_scalar")):
            speedup = timing.get(key)
            if speedup is not None:
                extra += f" {label}-speedup={speedup:.2f}x"
        ok = result["deterministic"]["reports_identical"]
        print(f"{name}: {summary}{extra} "
              f"reports_identical={ok} -> {path}")
        profiles = result["meta"].get("profiles")
        if profiles:
            for engine, pstats_path in sorted(profiles.items()):
                print(f"  profile[{engine}] -> {pstats_path}")
        if not ok:
            print(f"error: {name}: engine reports diverge",
                  file=sys.stderr)
            status = 1
        if args.compare:
            try:
                baseline = load_result(args.compare)
            except ExperimentError as error:
                print(f"error: {error}", file=sys.stderr)
                return 2
            failures = compare_results(result, baseline,
                                       threshold=args.threshold)
            if failures:
                for failure in failures:
                    print(f"REGRESSION {name}: {failure}", file=sys.stderr)
                status = 1
            else:
                print(f"{name}: within {args.threshold:.0%} of baseline "
                      f"{args.compare}")
    if args.emit_metrics:
        from .obs import write_jsonl
        with open(args.emit_metrics, "w") as stream:
            write_jsonl(metrics.snapshot(), stream,
                        spans=tracer.snapshot(),
                        meta={"command": "bench",
                              "scenarios": list(names)})
        print(f"(metrics written to {args.emit_metrics})", file=sys.stderr)
    return status


def _parse_size(text: str) -> int:
    """``'512'``, ``'64K'``, ``'100M'``, ``'2G'`` → bytes."""
    suffixes = {"K": 1 << 10, "M": 1 << 20, "G": 1 << 30}
    cleaned = text.strip().upper()
    factor = 1
    if cleaned and cleaned[-1] in suffixes:
        factor = suffixes[cleaned[-1]]
        cleaned = cleaned[:-1]
    try:
        value = int(cleaned) * factor
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"bad size {text!r}; use an integer with optional K/M/G suffix")
    if value < 0:
        raise argparse.ArgumentTypeError(f"size must be >= 0, got {text!r}")
    return value


def _cmd_cache_sweep(args: argparse.Namespace) -> int:
    from .exec import ResultCache, default_cache
    if args.max_bytes is None and args.max_age_days is None:
        print("cache sweep needs --max-bytes and/or --max-age-days",
              file=sys.stderr)
        return 2
    cache = ResultCache(args.dir) if args.dir else default_cache()
    result = cache.sweep(max_bytes=args.max_bytes,
                         max_age_days=args.max_age_days)
    print(f"{cache.directory}: {result.describe()}")
    return 0


def _cmd_export_config(args: argparse.Namespace) -> int:
    from .serialization import save_config
    config = default_config() if args.full else bench_config()
    save_config(config, args.path)
    print(f"config written to {args.path}")
    return 0


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


# ---------------------------------------------------------------------------
# Shared flag surface
#
# Every flag that appears on more than one subcommand is defined exactly
# once, in a parent parser, so ``--jobs``/``--workers``/``--backend``/
# ``--task-timeout``/``--emit-metrics`` are spelled and help-texted
# identically across figure/compare/bench/worker/cluster.
# ---------------------------------------------------------------------------

def _parent(add_flags) -> argparse.ArgumentParser:
    parent = argparse.ArgumentParser(add_help=False)
    add_flags(parent)
    return parent


def _flag_jobs(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=_positive_int, default=1, metavar="N",
                        help="worker processes for the experiment runner "
                             "(default: 1, serial)")


def _flag_backend(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--backend", metavar="SPEC", default=None,
                        help="execution backend spec: serial | fork[:N] | "
                             "dist://host:port,... | cluster://host:port"
                             "[?weight=N&client=NAME&keyfile=PATH] "
                             "(see docs/SERVICE.md)")


def _flag_workers(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workers", metavar="HOST:PORT[,HOST:PORT...]",
                        help="dispatch to remote 'repro worker serve' "
                             "endpoints instead of local processes "
                             "(overrides --jobs)")
    parser.add_argument("--spawn-local", type=_positive_int, default=None,
                        metavar="N",
                        help="fork N local worker processes and dispatch "
                             "to them (mutually exclusive with --workers)")


def _flag_task_timeout(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--task-timeout", type=float, default=300.0,
                        metavar="SECONDS",
                        help="per-task timeout for distributed/cluster "
                             "dispatch (default: 300)")


def _flag_emit_metrics(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--emit-metrics", metavar="PATH", default=None,
                        help="write the run's merged metrics registry and "
                             "spans as a JSON-lines dump (read it back "
                             "with 'repro stats')")


def _flag_no_cache(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore and do not populate the persistent "
                             "result cache")


def _flag_keyfile(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--keyfile", metavar="PATH", default=None,
                        help="shared HMAC key for authenticated cluster "
                             "frames (generate with 'repro cluster "
                             "keygen')")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Silent Shredder (ASPLOS 2016) reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    # Shared parent parsers: one definition per flag (see above).
    runner_flags = _parent(lambda p: (_flag_jobs(p), _flag_backend(p),
                                      _flag_workers(p), _flag_task_timeout(p),
                                      _flag_no_cache(p),
                                      _flag_emit_metrics(p)))
    emit_metrics_flag = _parent(_flag_emit_metrics)
    task_timeout_flag = _parent(_flag_task_timeout)
    keyfile_flag = _parent(_flag_keyfile)

    describe = sub.add_parser("describe", help="print the system config")
    describe.add_argument("--full", action="store_true",
                          help="the paper's full-size Table 1 instead of "
                               "the scaled benchmark system")
    describe.set_defaults(func=_cmd_describe)

    listing = sub.add_parser("list-benchmarks", help="list workloads")
    listing.set_defaults(func=_cmd_list)

    compare = sub.add_parser("compare", parents=[runner_flags],
                             help="baseline vs Silent Shredder on one workload")
    compare.add_argument("--benchmark", default="GCC")
    compare.add_argument("--scale", type=float, default=0.5)
    compare.add_argument("--cores", type=int, default=2)
    compare.add_argument("--nodes", type=int, default=1500,
                         help="graph size for PowerGraph workloads")
    compare.set_defaults(func=_cmd_compare)

    figure = sub.add_parser("figure", parents=[runner_flags],
                            help="regenerate a paper figure/table")
    figure.add_argument("name", choices=FIGURES)
    figure.add_argument("--scale", type=float, default=0.5)
    figure.add_argument("--cores", type=int, default=2)
    figure.add_argument("--csv", help="also write the rows as CSV")
    figure.add_argument("--benchmarks",
                        help="comma-separated subset for fig8-fig11 "
                             "(default: the full SPEC + PowerGraph suite)")
    figure.set_defaults(func=_cmd_figure)

    export = sub.add_parser("export-config",
                            help="write a system config as JSON")
    export.add_argument("path")
    export.add_argument("--full", action="store_true",
                        help="the full-size Table 1 system")
    export.set_defaults(func=_cmd_export_config)

    worker = sub.add_parser("worker", help="distributed execution workers")
    worker_sub = worker.add_subparsers(dest="worker_command", required=True)
    serve = worker_sub.add_parser(
        "serve", parents=[emit_metrics_flag, keyfile_flag],
        help="run an experiment worker: a TCP task server, or (with "
             "--register) a dial-out worker on an experiment cluster")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="listen port (default: 0, OS-assigned; the "
                            "bound endpoint is printed on startup)")
    serve.add_argument("--register", metavar="HOST:PORT", default=None,
                       help="register with the experiment cluster "
                            "dispatcher at HOST:PORT over one persistent "
                            "connection instead of listening locally")
    serve.add_argument("--heartbeat", type=float, default=5.0,
                       metavar="SECONDS",
                       help="idle heartbeat period for --register mode "
                            "(default: 5)")
    serve.add_argument("--max-tasks", type=_positive_int, default=None,
                       metavar="N",
                       help="exit after serving N tasks (default: forever)")
    serve.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="consult/populate a worker-side result cache "
                            "rooted at DIR before executing each task")
    serve.add_argument("--metrics-port", type=int, default=None,
                       metavar="PORT",
                       help="also serve the live registry at "
                            "http://HOST:PORT/metrics in the Prometheus "
                            "text format (0 picks a free port; the "
                            "endpoint is printed on startup)")
    serve.set_defaults(func=_cmd_worker_serve)

    cluster = sub.add_parser(
        "cluster",
        help="the long-lived multi-tenant experiment cluster "
             "(docs/SERVICE.md)")
    cluster_sub = cluster.add_subparsers(dest="cluster_command",
                                         required=True)
    cserve = cluster_sub.add_parser(
        "serve", parents=[task_timeout_flag, emit_metrics_flag,
                          keyfile_flag],
        help="run the cluster dispatcher in the foreground")
    cserve.add_argument("--host", default="127.0.0.1")
    cserve.add_argument("--port", type=int, default=0,
                        help="listen port (default: 0, OS-assigned; the "
                             "bound endpoint is printed on startup)")
    cserve.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="cluster-wide shared result cache: any "
                             "client's warm hit serves every client")
    cserve.add_argument("--max-retries", type=int, default=3, metavar="N",
                        help="failed attempts a task survives before its "
                             "batch fails (default: 3)")
    cserve.add_argument("--heartbeat-timeout", type=float, default=30.0,
                        metavar="SECONDS",
                        help="declare a silent worker dead after this many "
                             "seconds (default: 30)")
    cserve.add_argument("--metrics-port", type=int, default=None,
                        metavar="PORT",
                        help="also serve the live registry at "
                             "http://HOST:PORT/metrics in the Prometheus "
                             "text format (0 picks a free port; the "
                             "endpoint is printed on startup)")
    cserve.set_defaults(func=_cmd_cluster_serve)

    cstatus = cluster_sub.add_parser(
        "status", parents=[keyfile_flag],
        help="print the dispatcher's live status as JSON")
    cstatus.add_argument("address", metavar="HOST:PORT")
    cstatus.set_defaults(func=_cmd_cluster_status)

    cdrain = cluster_sub.add_parser(
        "drain", parents=[keyfile_flag, task_timeout_flag],
        help="finish all queued and in-flight work, then refuse new "
             "batches")
    cdrain.add_argument("address", metavar="HOST:PORT")
    cdrain.add_argument("--stop-workers", action="store_true",
                        help="also say goodbye to every registered worker "
                             "once drained")
    cdrain.set_defaults(func=_cmd_cluster_drain)

    cshutdown = cluster_sub.add_parser(
        "shutdown", parents=[keyfile_flag],
        help="stop the dispatcher itself")
    cshutdown.add_argument("address", metavar="HOST:PORT")
    cshutdown.set_defaults(func=_cmd_cluster_shutdown)

    ckeygen = cluster_sub.add_parser(
        "keygen", help="generate a fresh shared cluster keyfile (0600)")
    ckeygen.add_argument("path", help="where to write the keyfile")
    ckeygen.set_defaults(func=_cmd_cluster_keygen)

    top = sub.add_parser(
        "top", parents=[keyfile_flag],
        help="live cluster view: poll a dispatcher's status endpoint and "
             "refresh queue depth, throughput, worker health, and cache "
             "hit rate in-terminal")
    top.add_argument("address", metavar="HOST:PORT",
                     help="the cluster dispatcher endpoint")
    top.add_argument("--interval", type=float, default=2.0,
                     metavar="SECONDS",
                     help="seconds between polls (default: 2)")
    top.add_argument("--iterations", type=_positive_int, default=None,
                     metavar="N",
                     help="exit after N refreshes (default: run until ^C)")
    top.set_defaults(func=_cmd_top)

    events = sub.add_parser(
        "events", parents=[runner_flags],
        help="run one workload and print its flight-recorder event log "
             "(shreds, zero-fill elisions, counter overflows, IV "
             "regenerations) as canonical JSON-lines")
    events.add_argument("--benchmark", default="GCC",
                        help="SPEC/PowerGraph name, or STREAM for a "
                             "synthetic shred-heavy access stream")
    events.add_argument("--scale", type=float, default=0.5)
    events.add_argument("--cores", type=int, default=2)
    events.add_argument("--accesses", type=_positive_int, default=20000,
                        help="stream length for --benchmark STREAM")
    events.add_argument("--shred-fraction", type=float, default=0.05,
                        help="shred density for --benchmark STREAM")
    events.add_argument("--nodes", type=int, default=1500,
                        help="graph size for PowerGraph workloads")
    events.add_argument("--engine", default="scalar",
                        help="access-stream engine: scalar | batch | "
                             "vector (the log is identical across them)")
    events.add_argument("--baseline", action="store_true",
                        help="run the baseline (non-shredder) system "
                             "instead of Silent Shredder")
    events.add_argument("--match", default=None, metavar="SUBSTR",
                        help="only print events whose canonical JSON line "
                             "contains SUBSTR")
    events.set_defaults(func=_cmd_events)

    cache = sub.add_parser("cache", help="persistent result cache upkeep")
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    sweep = cache_sub.add_parser(
        "sweep", help="LRU-evict entries past size/age bounds")
    sweep.add_argument("--max-bytes", type=_parse_size, default=None,
                       metavar="SIZE",
                       help="keep at most SIZE bytes of newest entries "
                            "(accepts K/M/G suffixes)")
    sweep.add_argument("--max-age-days", type=float, default=None,
                       metavar="DAYS",
                       help="drop entries older than DAYS")
    sweep.add_argument("--dir", default=None,
                       help="cache directory (default: the resolved "
                            "shared cache)")
    sweep.set_defaults(func=_cmd_cache_sweep)

    analyze = sub.add_parser(
        "analyze",
        help="run the repo's static invariant checker (REPRO### rules)")
    analyze.add_argument("paths", nargs="*",
                         help="files or directories to check (default: the "
                              "repo's source roots under --root)")
    analyze.add_argument("--root", default=".",
                         help="repository root for module names, docs "
                              "lookups, and default paths (default: .)")
    analyze.add_argument("--format", choices=("text", "json", "sarif"),
                         default="text",
                         help="report format (default: text, one clickable "
                              "path:line per violation; sarif emits a "
                              "2.1.0 log for code-scanning upload)")
    analyze.add_argument("--output", default=None, metavar="FILE",
                         help="write the report to FILE instead of stdout")
    analyze.add_argument("--changed", action="store_true",
                         help="report only findings in files changed vs. "
                              "git HEAD (the run itself stays whole-"
                              "project, served from the incremental "
                              "cache)")
    analyze.add_argument("--no-cache", action="store_true",
                         help="disable the incremental result cache "
                              "(.repro-analysis-cache.json under --root)")
    analyze.add_argument("--select", default=None, metavar="CODES",
                         help="only enforce these comma-separated REPRO### "
                              "codes")
    analyze.add_argument("--ignore", default=None, metavar="CODES",
                         help="skip these comma-separated REPRO### codes")
    analyze.add_argument("--list-rules", action="store_true",
                         help="print the rule catalog and exit")
    analyze.add_argument("--import-graph", choices=("dot",), default=None,
                         metavar="FORMAT",
                         help="export the package import graph (module-"
                              "level and function-local edges, annotated "
                              "with layer ranks) instead of checking rules")
    analyze.set_defaults(func=_cmd_analyze)

    bench = sub.add_parser(
        "bench", parents=[emit_metrics_flag],
        help="run performance scenarios through the access engines and "
             "record BENCH_<scenario>.json trajectories")
    bench.add_argument("scenarios", nargs="*",
                       help="scenario names (default: all; see --list)")
    bench.add_argument("--list", action="store_true",
                       help="print the scenario catalog and exit")
    bench.add_argument("--warmup", type=int, default=1, metavar="N",
                       help="untimed runs per engine before measuring "
                            "(default: 1)")
    bench.add_argument("--repeat", type=_positive_int, default=3,
                       metavar="N",
                       help="timed runs per engine (default: 3)")
    bench.add_argument("--output-dir", default=None, metavar="DIR",
                       help="directory for BENCH_<scenario>.json files "
                            "(default: current directory)")
    bench.add_argument("--compare", default=None, metavar="BASELINE.json",
                       help="gate the run against a recorded baseline: "
                            "fail on deterministic divergence or timing "
                            "regression past --threshold")
    bench.add_argument("--threshold", type=float, default=0.5,
                       metavar="FRACTION",
                       help="allowed fractional slowdown vs the baseline's "
                            "best time before --compare fails "
                            "(default: 0.5 = 50%%)")
    bench.add_argument("--profile", default=None, metavar="DIR",
                       help="also run each engine once under cProfile and "
                            "dump <scenario>.<engine>.pstats files into "
                            "DIR (profiled runs are separate from the "
                            "timed repeats)")
    bench.set_defaults(func=_cmd_bench)

    stats = sub.add_parser(
        "stats", help="render an --emit-metrics JSON-lines dump")
    stats.add_argument("path", help="dump file written by --emit-metrics")
    stats.add_argument("--format",
                       choices=("table", "prom", "jsonl", "trace"),
                       default="table",
                       help="output format (default: table; 'trace' emits "
                            "the dump's spans as chrome://tracing JSON)")
    stats.add_argument("--prefix", default=None, metavar="NAME",
                       help="only show metrics under this dotted prefix "
                            "(e.g. mem.nvm)")
    stats.set_defaults(func=_cmd_stats)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BackendError as error:
        # Distributed failures (dead workers, exhausted retries) are
        # operational, not bugs: report and exit instead of tracebacks.
        print(f"error: {error}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # ``repro stats ... | head`` closes stdout early. Point the
        # descriptor at devnull so the interpreter's exit-time flush
        # doesn't raise again, and exit quietly like other CLIs.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":       # pragma: no cover
    sys.exit(main())
