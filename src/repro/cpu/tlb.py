"""A per-core TLB with base- and huge-page entries.

Section 1 and 7.2 of the paper motivate large allocations partly by
translation cost: huge pages "skip one or more levels of translation
and hence speed up the page table walk process". The TLB model makes
that measurable: a miss costs a page-walk penalty, and one huge-page
entry covers 512 base pages of reach.

Disabled by default (``CPUConfig.tlb_entries == 0``) so the calibrated
figure benchmarks are unaffected; the huge-page benchmark and tests
enable it explicitly.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple


@dataclass
class TLBEntry:
    """One cached translation."""

    base_vpn: int
    span: int                 # pages covered (1, or huge_size/page_size)
    base_ppn: int
    writable: bool


@dataclass
class TLBStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def miss_rate(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0


class TLB:
    """Fully-associative, LRU translation cache."""

    def __init__(self, entries: int, page_size: int,
                 huge_span: int = 512) -> None:
        self.capacity = entries
        self.page_size = page_size
        self.huge_span = huge_span
        # base_vpn -> entry; ordered for LRU.
        self._entries: "OrderedDict[int, TLBEntry]" = OrderedDict()
        self.stats = TLBStats()

    def lookup(self, vpn: int, *, write: bool) -> Optional[int]:
        """Return the cached base physical page for ``vpn`` or None.

        A write against a read-only entry is reported as a miss so the
        kernel can run its copy-on-write fault path.
        """
        for base_vpn in (vpn, vpn - vpn % self.huge_span):
            entry = self._entries.get(base_vpn)
            if entry is not None and base_vpn + entry.span > vpn:
                if write and not entry.writable:
                    continue
                self._entries.move_to_end(base_vpn)
                self.stats.hits += 1
                return entry.base_ppn + (vpn - base_vpn)
        self.stats.misses += 1
        return None

    def insert(self, vpn: int, ppn: int, *, writable: bool,
               huge: bool = False) -> None:
        """Cache one translation (the whole unit, for huge pages)."""
        if self.capacity <= 0:
            return
        if huge:
            base_vpn = vpn - vpn % self.huge_span
            entry = TLBEntry(base_vpn=base_vpn, span=self.huge_span,
                             base_ppn=ppn - (vpn - base_vpn),
                             writable=writable)
        else:
            entry = TLBEntry(base_vpn=vpn, span=1, base_ppn=ppn,
                             writable=writable)
        self._entries.pop(entry.base_vpn, None)
        self._entries[entry.base_vpn] = entry
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def invalidate(self, vpn: int) -> None:
        """Drop any entry covering ``vpn`` (PTE change / munmap)."""
        self._entries.pop(vpn, None)
        self._entries.pop(vpn - vpn % self.huge_span, None)

    def flush(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)
