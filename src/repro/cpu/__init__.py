"""CPU timing model: in-order cores with a store buffer.

The paper's evaluation reports IPC from gem5's detailed cores; this
reproduction uses a transaction-level in-order core: one cycle per
instruction (configurable base CPI), loads stall for the full memory
latency, stores retire through a finite store buffer that only stalls
the core when full. Relative IPC between the baseline and Silent
Shredder — the quantity Figure 11 reports — is driven by exactly the
latencies this model captures.
"""

from .core import Core, CoreStats
from .tlb import TLB, TLBStats

__all__ = ["Core", "CoreStats", "TLB", "TLBStats"]
