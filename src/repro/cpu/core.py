"""In-order core timing model."""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional

from ..config import CPUConfig


@dataclass
class CoreStats:
    """Retired-instruction and stall accounting for one core."""

    instructions: int = 0
    cycles: float = 0.0
    loads: int = 0
    stores: int = 0
    load_stall_cycles: float = 0.0
    store_stall_cycles: float = 0.0
    fault_cycles: float = 0.0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0


class Core:
    """One in-order core: compute advances time, loads stall, stores
    drain through a finite store buffer."""

    def __init__(self, core_id: int, config: CPUConfig) -> None:
        self.core_id = core_id
        self.config = config
        self.stats = CoreStats()
        self._cycle_ns = config.cycle_ns
        self._cpi = config.base_cpi
        # Completion times (ns) of in-flight stores, oldest first.
        self._store_buffer: Deque[float] = deque()
        self._store_buffer_size = config.store_buffer_entries

    # -- time ---------------------------------------------------------------

    @property
    def now_ns(self) -> float:
        return self.stats.cycles * self._cycle_ns

    def _advance(self, cycles: float) -> None:
        self.stats.cycles += cycles

    # -- instruction classes ----------------------------------------------------

    def compute(self, instructions: int) -> None:
        """Retire ``instructions`` non-memory instructions."""
        if instructions <= 0:
            return
        self.stats.instructions += instructions
        self._advance(instructions * self._cpi)

    def load(self, latency_cycles: float) -> None:
        """Retire one load that stalled for ``latency_cycles``."""
        self.stats.instructions += 1
        self.stats.loads += 1
        self.stats.load_stall_cycles += latency_cycles
        self._advance(self._cpi + latency_cycles)

    def store(self, latency_cycles: float) -> None:
        """Retire one store through the store buffer.

        The store occupies a buffer entry until ``latency_cycles`` from
        now; the core stalls only when the buffer is full.
        """
        self.stats.instructions += 1
        self.stats.stores += 1
        now = self.now_ns
        while self._store_buffer and self._store_buffer[0] <= now:
            self._store_buffer.popleft()
        if len(self._store_buffer) >= self._store_buffer_size:
            oldest = self._store_buffer.popleft()
            stall_cycles = max(0.0, (oldest - now) / self._cycle_ns)
            self.stats.store_stall_cycles += stall_cycles
            self._advance(stall_cycles)
            now = self.now_ns
        self._store_buffer.append(now + latency_cycles * self._cycle_ns)
        self._advance(self._cpi)

    def stall(self, cycles: float, *, fault: bool = False) -> None:
        """Stall without retiring an instruction (page faults etc.)."""
        if cycles <= 0:
            return
        if fault:
            self.stats.fault_cycles += cycles
        self._advance(cycles)

    def drain_stores(self) -> None:
        """Wait for every outstanding store (an sfence at task end)."""
        if not self._store_buffer:
            return
        last = self._store_buffer[-1]
        if last > self.now_ns:
            stall_cycles = (last - self.now_ns) / self._cycle_ns
            self.stats.store_stall_cycles += stall_cycles
            self._advance(stall_cycles)
        self._store_buffer.clear()
