"""Workloads: the paper's evaluation drivers.

* :mod:`repro.workloads.memsetbench` — the Figure 3/4 microbenchmark
  (two consecutive ``memset`` calls over 64 MB–1 GB regions).
* :mod:`repro.workloads.spec` — 26 parameterised models of the SPEC
  CPU2006 benchmarks, checkpointed at their initialization phase.
* :mod:`repro.workloads.graphs` — synthetic power-law graph generator.
* :mod:`repro.workloads.powergraph` — PageRank, greedy colouring and
  k-core over CSR graphs built in simulated memory (the PowerGraph
  applications), checkpointed at graph construction.
* :mod:`repro.workloads.mix` — multi-programmed SPEC mixes (one
  instance per core, as in section 5).
"""

from .memsetbench import memset_experiment, MemsetTiming
from .spec import SPEC_BENCHMARKS, SpecParams, spec_task
from .graphs import power_law_graph, Graph
from .powergraph import (POWERGRAPH_APPS, pagerank_task,
                         simple_coloring_task, kcore_task, powergraph_task)
from .mix import multiprogrammed_tasks
from .churn import ChurnParams, churn_task
from .streams import spec_access_batch

__all__ = [
    "ChurnParams",
    "Graph",
    "MemsetTiming",
    "POWERGRAPH_APPS",
    "SPEC_BENCHMARKS",
    "SpecParams",
    "churn_task",
    "kcore_task",
    "memset_experiment",
    "multiprogrammed_tasks",
    "pagerank_task",
    "power_law_graph",
    "powergraph_task",
    "simple_coloring_task",
    "spec_access_batch",
    "spec_task",
]
