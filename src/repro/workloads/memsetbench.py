"""The kernel-zeroing microbenchmark of Figures 3 and 4.

The probe program allocates ``SIZE`` bytes and calls ``memset`` on the
region twice. The **first** memset first-touches every page, so each
store may take a page fault whose handler allocates and *zeroes* a
physical page — then the program's own zeroing runs on top. The
**second** memset only pays program zeroing. The difference between the
two times is (page faults +) kernel zeroing; the paper measures kernel
zeroing at roughly a third of the first memset's time on DRAM, growing
with NVM's slower writes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.system import System


@dataclass
class MemsetTiming:
    """Timing split of the two-memset experiment."""

    size_bytes: int
    first_ns: float               # faults + kernel zeroing + program zeroing
    second_ns: float              # program zeroing only
    fault_ns: float               # kernel time inside faults (incl. zeroing)
    kernel_zeroing_ns: float      # the zeroing portion alone

    @property
    def kernel_fraction(self) -> float:
        """Fraction of the first memset spent in fault handling/zeroing."""
        return self.fault_ns / self.first_ns if self.first_ns else 0.0

    @property
    def zeroing_fraction(self) -> float:
        return self.kernel_zeroing_ns / self.first_ns if self.first_ns else 0.0


def memset_experiment(system: System, size_bytes: int, *,
                      core_id: int = 0) -> MemsetTiming:
    """Run the two-memset probe on ``system`` and split its time."""
    ctx = system.new_context(core_id)
    core = system.cores[core_id]
    base = ctx.malloc(size_bytes)

    fault_before = system.kernel.stats.fault_ns
    zero_before = system.kernel.stats.zeroing_ns
    start = core.now_ns
    ctx.memset(base, size_bytes)
    core.drain_stores()
    first_ns = core.now_ns - start
    fault_ns = system.kernel.stats.fault_ns - fault_before
    kernel_zeroing_ns = system.kernel.stats.zeroing_ns - zero_before

    start = core.now_ns
    ctx.memset(base, size_bytes)
    core.drain_stores()
    second_ns = core.now_ns - start

    return MemsetTiming(size_bytes=size_bytes, first_ns=first_ns,
                        second_ns=second_ns, fault_ns=fault_ns,
                        kernel_zeroing_ns=kernel_zeroing_ns)
