"""Parameterised models of the 26 SPEC CPU2006 workloads.

The paper checkpoints each benchmark at the start of its initialization
phase and simulates ~500 M instructions per core. What differentiates
the per-benchmark bars of Figures 8-11 during that window is:

* how many pages the process first-touches (each one costs a kernel
  page zeroing in the baseline — eliminated by Silent Shredder),
* how much of each freshly allocated page the application itself
  writes and rewrites (those writes reach NVM either way and dilute
  the savings),
* how much it *reads* of freshly allocated memory it never wrote
  (those reads hit shredded blocks and are served as zero-fill), and
* how memory-bound the instruction stream is (which scales the IPC
  effect of the memory-side savings).

Each benchmark below is a point in that four-dimensional space, chosen
to land its bar in the band the paper reports (e.g. H264/DealII/Hmmer
write almost nothing themselves during init -> ~90 % write savings;
lbm/milc rewrite their grids -> low savings; bwaves is the most
memory-bound -> the largest IPC gain). Absolute footprints are scaled
to the ``bench_config`` cache sizes; ``scale`` shrinks them further for
tests.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterator, List

from ..runtime import ExecutionContext


@dataclass(frozen=True)
class SpecParams:
    """Initialization-phase model of one benchmark."""

    name: str
    alloc_pages: int              # pages first-touched during init
    init_writes_per_page: int     # app block-stores per page (>=1; >64 rewrites)
    init_read_fraction: float     # blocks of each page the app reads back
    untouched_read_fraction: float  # reads to blocks it never wrote (zeros)
    steady_ops: int               # accesses after the allocation burst
    steady_write_ratio: float     # stores among steady accesses
    compute_per_op: int           # ALU instructions between memory ops
    seed: int = 1234

    def scaled(self, scale: float) -> "SpecParams":
        """Shrink the workload while keeping its shape."""
        return SpecParams(
            name=self.name,
            alloc_pages=max(4, int(self.alloc_pages * scale)),
            init_writes_per_page=self.init_writes_per_page,
            init_read_fraction=self.init_read_fraction,
            untouched_read_fraction=self.untouched_read_fraction,
            steady_ops=max(64, int(self.steady_ops * scale)),
            steady_write_ratio=self.steady_write_ratio,
            compute_per_op=self.compute_per_op,
            seed=self.seed,
        )


def spec_task(params: SpecParams):
    """Build the generator task for one SPEC model instance."""

    def task(ctx: ExecutionContext) -> Iterator[None]:
        rng = random.Random(params.seed + ctx.core_id * 7919)
        page_size = ctx.page_size
        block_size = ctx.block_size
        blocks_per_page = page_size // block_size
        base = ctx.malloc(params.alloc_pages * page_size)

        written_blocks: List[int] = []
        ops_since_yield = 0

        def maybe_yield():
            nonlocal ops_since_yield
            ops_since_yield += 1
            if ops_since_yield >= 256:
                ops_since_yield = 0
                return True
            return False

        # ---- initialization phase: first-touch and populate pages ----
        for page in range(params.alloc_pages):
            page_base = base + page * page_size
            writes = params.init_writes_per_page
            # Sequential first pass over the page prefix; rewrites wrap
            # around the same prefix (write-heavy kernels revisit data).
            distinct = min(writes, blocks_per_page)
            for i in range(writes):
                addr = page_base + (i % distinct) * block_size
                ctx.touch(addr, write=True)
                ctx.compute(params.compute_per_op)
                if i < distinct:
                    written_blocks.append(addr)
                if maybe_yield():
                    yield

            # Read-back: mostly of what was written, partly of pristine
            # blocks further into the page (zero-filled under shredding).
            reads = int(params.init_read_fraction * blocks_per_page)
            for i in range(reads):
                if rng.random() < params.untouched_read_fraction:
                    block = rng.randrange(distinct, blocks_per_page) \
                        if distinct < blocks_per_page else rng.randrange(blocks_per_page)
                else:
                    block = rng.randrange(distinct)
                ctx.touch(page_base + block * block_size, write=False)
                ctx.compute(params.compute_per_op)
                if maybe_yield():
                    yield

        # ---- steady phase: locality-driven access to populated data ----
        if written_blocks:
            for i in range(params.steady_ops):
                addr = written_blocks[rng.randrange(len(written_blocks))]
                is_write = rng.random() < params.steady_write_ratio
                ctx.touch(addr, write=is_write)
                ctx.compute(params.compute_per_op)
                if maybe_yield():
                    yield
        yield

    return task


def _p(name: str, pages: int, wpp: int, readf: float, untouched: float,
       steady: int, wr: float, cpi: int, seed: int) -> SpecParams:
    return SpecParams(name=name, alloc_pages=pages, init_writes_per_page=wpp,
                      init_read_fraction=readf, untouched_read_fraction=untouched,
                      steady_ops=steady, steady_write_ratio=wr,
                      compute_per_op=cpi, seed=seed)


#: The 26 SPEC CPU2006 workloads of the paper's Figure 8, modelled at
#: initialization. Grouped by the write-savings band their bar sits in.
SPEC_BENCHMARKS: Dict[str, SpecParams] = {
    # --- very high savings: init dominated by kernel zeroing -------------
    "H264":      _p("H264", 96, 4, 0.3, 0.5, 4000, 0.10, 360, 11),
    "DEAL":      _p("DEAL", 112, 4, 0.4, 0.5, 3500, 0.08, 320, 12),
    "HMMER":     _p("HMMER", 96, 5, 0.3, 0.4, 4000, 0.10, 340, 13),
    "GAMESS":    _p("GAMESS", 80, 6, 0.3, 0.4, 4500, 0.10, 400, 14),
    "POVRAY":    _p("POVRAY", 72, 6, 0.4, 0.5, 4000, 0.12, 380, 15),
    "NAMD":      _p("NAMD", 88, 8, 0.4, 0.4, 4000, 0.12, 340, 16),
    "SJENG":     _p("SJENG", 96, 8, 0.3, 0.4, 4500, 0.15, 300, 17),
    "GO":        _p("GO", 96, 8, 0.4, 0.4, 4500, 0.15, 300, 18),
    "GROMACS":   _p("GROMACS", 80, 10, 0.4, 0.4, 4000, 0.12, 340, 19),
    "PERL":      _p("PERL", 96, 10, 0.5, 0.4, 4000, 0.15, 280, 20),
    # --- medium savings: app writes a fair share of its pages ------------
    "GCC":       _p("GCC", 128, 48, 0.5, 0.3, 9000, 0.30, 180, 21),
    "XALAN":     _p("XALAN", 128, 56, 0.5, 0.3, 9000, 0.30, 160, 22),
    "ASTAR":     _p("ASTAR", 96, 56, 0.5, 0.3, 9000, 0.25, 180, 23),
    "BZIP":      _p("BZIP", 112, 64, 0.4, 0.3, 10000, 0.35, 160, 24),
    "OMNETPP":   _p("OMNETPP", 112, 60, 0.6, 0.3, 10000, 0.30, 150, 25),
    "SPHINIX":   _p("SPHINIX", 96, 56, 0.6, 0.3, 9000, 0.25, 180, 26),
    "ZEUS":      _p("ZEUS", 144, 72, 0.5, 0.3, 10000, 0.35, 130, 27),
    "LESLIE3D":  _p("LESLIE3D", 144, 80, 0.5, 0.3, 10000, 0.35, 130, 28),
    "CACTUS":    _p("CACTUS", 128, 64, 0.5, 0.3, 9000, 0.30, 150, 29),
    "GEMS":      _p("GEMS", 160, 80, 0.6, 0.3, 11000, 0.35, 130, 30),
    "BWAVES":    _p("BWAVES", 192, 36, 0.8, 0.5, 11000, 0.25, 40, 31),
    # --- low savings: write-intensive kernels rewrite their data ---------
    "MCF":       _p("MCF", 160, 128, 0.6, 0.2, 12000, 0.45, 70, 32),
    "SOPLEX":    _p("SOPLEX", 144, 144, 0.5, 0.2, 12000, 0.45, 90, 33),
    "LIBQUANTUM": _p("LIBQUANTUM", 160, 176, 0.5, 0.2, 13000, 0.50, 70, 34),
    "MILC":      _p("MILC", 176, 208, 0.5, 0.2, 13000, 0.55, 60, 35),
    "LBM":       _p("LBM", 192, 240, 0.4, 0.2, 13000, 0.60, 50, 36),
}
