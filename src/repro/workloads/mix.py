"""Multi-programmed workload mixes (section 5).

The paper runs one instance of each SPEC benchmark per core. The mix
builder replicates a benchmark model across the system's cores with
decorrelated seeds, or combines different benchmarks into one mix.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Sequence

from ..errors import SimulationError
from .spec import SPEC_BENCHMARKS, spec_task


def multiprogrammed_tasks(benchmark: str, num_cores: int, *,
                          scale: float = 1.0) -> List:
    """One instance of ``benchmark`` per core, with distinct seeds."""
    params = SPEC_BENCHMARKS.get(benchmark)
    if params is None:
        raise SimulationError(f"unknown SPEC benchmark {benchmark!r}")
    tasks = []
    for core in range(num_cores):
        instance = replace(params.scaled(scale), seed=params.seed + 1000 * core)
        tasks.append(spec_task(instance))
    return tasks


def heterogeneous_mix(benchmarks: Sequence[str], *, scale: float = 1.0) -> List:
    """A mix of different benchmarks, one per core slot, in order."""
    tasks = []
    for index, name in enumerate(benchmarks):
        params = SPEC_BENCHMARKS.get(name)
        if params is None:
            raise SimulationError(f"unknown SPEC benchmark {name!r}")
        instance = replace(params.scaled(scale), seed=params.seed + 1000 * index)
        tasks.append(spec_task(instance))
    return tasks
