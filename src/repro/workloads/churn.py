"""Server process-churn workload (section 6.1's loaded-server scenario).

"In a system that is highly loaded, data shredding will occur
frequently because the high load from multiple workloads [is] placing
a high pressure on the physical memory... A highly loaded system will
suffer from a high rate of page faults, and page fault latency is
critical in this situation."

This workload models a request-serving process pool: short-lived
workers spawn, touch a working set (every page allocation shreds a
recycled page), do a burst of request processing, release their memory
(``munmap``), and exit. Page recycling pressure — the shredding rate —
scales with the churn rate.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from ..runtime import ExecutionContext


@dataclass(frozen=True)
class ChurnParams:
    """Knobs of the churn generator."""

    workers: int = 40               # short-lived workers, sequential
    pages_per_worker: int = 12      # working set each allocates
    requests_per_worker: int = 60   # memory ops after setup
    compute_per_request: int = 120
    seed: int = 99


def churn_task(params: ChurnParams):
    """One core's worth of process churn.

    Workers reuse the *same* context/process (spawning real processes
    per worker would skew the comparison with bookkeeping); memory
    pressure comes from ``munmap`` returning every worker's pages to
    the pool, so the next worker's faults land on recycled frames.
    """

    def task(ctx: ExecutionContext) -> Iterator[None]:
        rng = random.Random(params.seed + ctx.core_id)
        page_size = ctx.page_size
        for worker in range(params.workers):
            region = ctx.kernel.mmap(ctx.pid,
                                     params.pages_per_worker * page_size)
            # Worker start-up: first-touch the whole working set.
            for page in range(params.pages_per_worker):
                ctx.touch(region.start + page * page_size, write=True)
                ctx.compute(40)
            # Serve requests against the working set.
            for _ in range(params.requests_per_worker):
                page = rng.randrange(params.pages_per_worker)
                offset = rng.randrange(page_size // 64) * 64
                address = region.start + page * page_size + offset
                ctx.touch(address, write=rng.random() < 0.3)
                ctx.compute(params.compute_per_request)
            # Worker exit: release the working set for the next one.
            ctx.kernel.munmap(ctx.pid, region)
            ctx.compute(200)
            yield

    return task
