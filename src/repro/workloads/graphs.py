"""Synthetic power-law graph generator.

The paper's PowerGraph runs use the Netflix and Twitter datasets; both
have heavy-tailed degree distributions. A Barabási–Albert-style
preferential-attachment process reproduces that skew, which is the
property that shapes the memory access stream of graph analytics
(a few hub vertices touched constantly, a long tail touched once).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Tuple

from ..errors import SimulationError


@dataclass
class Graph:
    """Immutable CSR-style graph: offsets + flattened adjacency."""

    num_nodes: int
    offsets: List[int]            # length num_nodes + 1
    edges: List[int]              # length offsets[-1]

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def neighbors(self, node: int) -> List[int]:
        return self.edges[self.offsets[node]:self.offsets[node + 1]]

    def degree(self, node: int) -> int:
        return self.offsets[node + 1] - self.offsets[node]

    def check(self) -> None:
        """Validate CSR invariants (used by property tests)."""
        if len(self.offsets) != self.num_nodes + 1:
            raise SimulationError("offsets length mismatch")
        if self.offsets[0] != 0 or self.offsets[-1] != len(self.edges):
            raise SimulationError("offset endpoints invalid")
        for i in range(self.num_nodes):
            if self.offsets[i] > self.offsets[i + 1]:
                raise SimulationError("offsets not monotone")
        for target in self.edges:
            if target < 0 or target >= self.num_nodes:
                raise SimulationError("edge target out of range")


def power_law_graph(num_nodes: int, edges_per_node: int = 4,
                    seed: int = 42) -> Graph:
    """Barabási–Albert preferential attachment, undirected, as CSR.

    Every new node attaches to ``edges_per_node`` existing nodes with
    probability proportional to current degree, yielding the power-law
    degree skew of social/rating graphs.
    """
    if num_nodes < 2:
        raise SimulationError("graph needs at least two nodes")
    edges_per_node = max(1, min(edges_per_node, num_nodes - 1))
    rng = random.Random(seed)

    adjacency: List[List[int]] = [[] for _ in range(num_nodes)]
    # Repeated-endpoints list implements preferential attachment in O(1).
    endpoint_pool: List[int] = [0]
    adjacency[0] = []
    for node in range(1, num_nodes):
        attach = min(edges_per_node, node)
        chosen = set()
        while len(chosen) < attach:
            candidate = endpoint_pool[rng.randrange(len(endpoint_pool))] \
                if rng.random() < 0.8 else rng.randrange(node)
            if candidate != node:
                chosen.add(candidate)
        for target in chosen:
            adjacency[node].append(target)
            adjacency[target].append(node)
            endpoint_pool.append(target)
        endpoint_pool.append(node)

    offsets = [0]
    edges: List[int] = []
    for node in range(num_nodes):
        edges.extend(sorted(adjacency[node]))
        offsets.append(len(edges))
    graph = Graph(num_nodes=num_nodes, offsets=offsets, edges=edges)
    graph.check()
    return graph
