"""PowerGraph-style graph analytics over simulated memory.

The three applications of the paper's evaluation — PageRank, simple
(greedy) colouring and k-core decomposition — run for real over a CSR
graph whose arrays live in simulated virtual memory. The measured
window matches the paper's checkpoint: the **graph construction
phase** (allocating and writing the CSR arrays: a write-once pass over
freshly allocated pages, where kernel shredding dominates baseline
writes) plus the first sweeps of the algorithm.

Ranks are kept in fixed-point (Q32.32) because the simulated arrays
hold 64-bit integers.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List

from ..errors import SimulationError
from ..runtime import ExecutionContext, SimArray
from .graphs import Graph, power_law_graph

FIXED_ONE = 1 << 32           # Q32.32 fixed-point 1.0
YIELD_EVERY = 256


def _build_csr(ctx: ExecutionContext, graph: Graph):
    """Graph construction: allocate and populate the CSR arrays."""
    offsets = SimArray(ctx, graph.num_nodes + 1, name="offsets")
    edges = SimArray(ctx, max(1, graph.num_edges), name="edges")
    offsets.load_from(graph.offsets)
    edges.load_from(graph.edges)
    return offsets, edges


def _yielding(counter: List[int]) -> bool:
    counter[0] += 1
    if counter[0] >= YIELD_EVERY:
        counter[0] = 0
        return True
    return False


def pagerank_task(graph: Graph, iterations: int = 3, damping: float = 0.85):
    """PageRank with the construction phase included in the window."""

    damping_fx = int(damping * FIXED_ONE)
    base_fx = FIXED_ONE - damping_fx

    def task(ctx: ExecutionContext) -> Iterator[None]:
        counter = [0]
        offsets, edges = _build_csr(ctx, graph)
        yield
        ranks = SimArray(ctx, graph.num_nodes, name="ranks")
        next_ranks = SimArray(ctx, graph.num_nodes, name="next_ranks")
        for node in range(graph.num_nodes):
            ranks[node] = FIXED_ONE
            if _yielding(counter):
                yield
        for _ in range(iterations):
            for node in range(graph.num_nodes):
                start = offsets[node]
                end = offsets[node + 1]
                acc = 0
                for position in range(start, end):
                    neighbor = edges[position]
                    degree = graph.degree(neighbor)
                    contribution = ranks[neighbor] // max(degree, 1)
                    acc += contribution
                    ctx.compute(30)
                    if _yielding(counter):
                        yield
                next_ranks[node] = base_fx + (damping_fx * acc >> 32)
                ctx.compute(40)
            ranks, next_ranks = next_ranks, ranks
        task.result = [ranks.shadow()[i] / FIXED_ONE
                       for i in range(graph.num_nodes)]
        yield

    return task


def simple_coloring_task(graph: Graph):
    """Greedy colouring: each node takes the smallest colour absent
    among its already-coloured neighbours."""

    def task(ctx: ExecutionContext) -> Iterator[None]:
        counter = [0]
        offsets, edges = _build_csr(ctx, graph)
        yield
        colors = SimArray(ctx, graph.num_nodes, name="colors")
        NO_COLOR = (1 << 64) - 1
        for node in range(graph.num_nodes):
            colors[node] = NO_COLOR
            if _yielding(counter):
                yield
        for node in range(graph.num_nodes):
            start = offsets[node]
            end = offsets[node + 1]
            taken = set()
            for position in range(start, end):
                neighbor = edges[position]
                neighbor_color = colors[neighbor]
                if neighbor_color != NO_COLOR:
                    taken.add(neighbor_color)
                ctx.compute(35)
                if _yielding(counter):
                    yield
            color = 0
            while color in taken:
                color += 1
            colors[node] = color
            ctx.compute(80 + 3 * len(taken))
        shadow = colors.shadow()
        for node in range(graph.num_nodes):
            for neighbor in graph.neighbors(node):
                if neighbor != node and shadow[node] == shadow[neighbor]:
                    raise SimulationError("colouring invariant violated")
        task.result = list(shadow)
        yield

    return task


def kcore_task(graph: Graph, k: int = 7):
    """k-core decomposition by iterative peeling of low-degree nodes."""

    def task(ctx: ExecutionContext) -> Iterator[None]:
        counter = [0]
        offsets, edges = _build_csr(ctx, graph)
        yield
        degrees = SimArray(ctx, graph.num_nodes, name="degrees")
        alive = SimArray(ctx, graph.num_nodes, name="alive")
        for node in range(graph.num_nodes):
            degrees[node] = graph.degree(node)
            alive[node] = 1
            if _yielding(counter):
                yield
        changed = True
        while changed:
            changed = False
            for node in range(graph.num_nodes):
                if alive[node] and degrees[node] < k:
                    alive[node] = 0
                    changed = True
                    start = offsets[node]
                    end = offsets[node + 1]
                    for position in range(start, end):
                        neighbor = edges[position]
                        if alive[neighbor]:
                            degrees[neighbor] = degrees[neighbor] - 1
                        ctx.compute(25)
                        if _yielding(counter):
                            yield
                ctx.compute(10)
        task.result = [node for node in range(graph.num_nodes)
                       if alive.shadow()[node]]
        yield

    return task


#: Application registry keyed by the names used in Figures 5 and 8-11.
POWERGRAPH_APPS: Dict[str, Callable] = {
    "PAGERANK": pagerank_task,
    "SIMPLE_COLORING": simple_coloring_task,
    "KCORE": kcore_task,
}


def powergraph_task(app: str, num_nodes: int = 2500, edges_per_node: int = 5,
                    seed: int = 42):
    """Convenience: build a power-law graph and the named application."""
    if app not in POWERGRAPH_APPS:
        raise SimulationError(f"unknown PowerGraph app {app!r}; "
                              f"choose from {sorted(POWERGRAPH_APPS)}")
    graph = power_law_graph(num_nodes, edges_per_node, seed)
    return POWERGRAPH_APPS[app](graph)
