"""Access-stream builders: batches from the existing workload generators.

The batch engine (:mod:`repro.sim.batch`) consumes flat
:class:`~repro.sim.batch.AccessBatch` arrays; this module derives them
from the same generators that drive the full-system tasks, so the
scalar-vs-batch equivalence tests and the benchmark scenarios replay
workload shapes the figures already exercise.

Lives in the workloads layer (not :mod:`repro.sim`) because building a
stream from :func:`~repro.workloads.spec.spec_task` is an import *from*
the workloads package — putting it here keeps the dependency pointing
downward (workloads -> sim), per layering rule REPRO201.
"""

from __future__ import annotations

from typing import List, Tuple

from ..sim.batch import OP_READ, OP_WRITE, AccessBatch
from .spec import SpecParams, spec_task


class _RecordingContext:
    """Duck-typed :class:`~repro.runtime.ExecutionContext` that records
    the generator's block accesses instead of simulating them."""

    def __init__(self, page_size: int, block_size: int) -> None:
        self.page_size = page_size
        self.block_size = block_size
        self.core_id = 0
        self._brk = 0
        self.trace: List[Tuple[int, int]] = []

    def malloc(self, nbytes: int) -> int:
        base = self._brk
        pages = -(-nbytes // self.page_size)
        self._brk += pages * self.page_size
        return base

    def touch(self, address: int, write: bool = False) -> None:
        block = address - address % self.block_size
        self.trace.append((block, OP_WRITE if write else OP_READ))

    def compute(self, instructions: int) -> None:
        pass


def spec_access_batch(params: SpecParams, *, page_size: int = 4096,
                      block_size: int = 64,
                      epoch_length: int = 256) -> AccessBatch:
    """Flatten one SPEC model's init-phase accesses into a batch.

    Runs the real :func:`spec_task` generator against a recording
    context, so the stream is exactly the block-access sequence the
    full-system task would issue (minus cache filtering, which the
    engines model at the controller boundary).
    """
    ctx = _RecordingContext(page_size, block_size)
    for _ in spec_task(params)(ctx):
        pass
    return AccessBatch.from_trace(ctx.trace, epoch_length=epoch_length)
