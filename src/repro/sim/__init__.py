"""Full-system assembly: machine, system, and result records.

* :class:`~repro.sim.machine.Machine` — caches + secure controller (+
  shred register) glued together at the physical-address level.
* :class:`~repro.sim.system.System` — machine + kernel + cores +
  processes; the object workloads run against.
* :mod:`repro.sim.batch` — the epoch-batched access-stream engine
  (:class:`AccessBatch`, :class:`ScalarEngine`, :class:`BatchEngine`).
* :mod:`repro.sim.results` — serialisable run summaries used by the
  benchmark harness and the analysis layer.
"""

from .batch import (AccessBatch, AccessEngine, BatchEngine, EngineResult,
                    OP_READ, OP_SHRED, OP_WRITE, ScalarEngine, make_engine)
from .machine import Machine
from .system import System, SystemReport
from .results import RunResult, compare_runs

__all__ = [
    "AccessBatch",
    "AccessEngine",
    "BatchEngine",
    "EngineResult",
    "Machine",
    "OP_READ",
    "OP_SHRED",
    "OP_WRITE",
    "RunResult",
    "ScalarEngine",
    "System",
    "SystemReport",
    "compare_runs",
    "make_engine",
]
