"""Full-system assembly: machine, system, and result records.

* :class:`~repro.sim.machine.Machine` — caches + secure controller (+
  shred register) glued together at the physical-address level.
* :class:`~repro.sim.system.System` — machine + kernel + cores +
  processes; the object workloads run against.
* :mod:`repro.sim.batch` — the epoch-batched access-stream engine
  (:class:`AccessBatch`, :class:`ScalarEngine`, :class:`BatchEngine`,
  :class:`VectorEngine`) over either the controller datapath or, for
  batches carrying a cores array, the bulk cache-hierarchy walk.
* :mod:`repro.sim.kernels` — flat-array kernels behind the vector
  engine seam (pure Python, optional numpy).
* :mod:`repro.sim.results` — serialisable run summaries used by the
  benchmark harness and the analysis layer.
"""

from .batch import (AccessBatch, AccessEngine, BatchEngine, EngineResult,
                    HierarchyMissPort, OP_READ, OP_SHRED, OP_WRITE,
                    ScalarEngine, VectorEngine, make_engine,
                    parse_engine_spec)
from .kernels import NumpyKernel, PyKernel, numpy_available, resolve_kernel
from .machine import Machine
from .system import System, SystemReport
from .results import RunResult, compare_runs

__all__ = [
    "AccessBatch",
    "AccessEngine",
    "BatchEngine",
    "EngineResult",
    "HierarchyMissPort",
    "Machine",
    "NumpyKernel",
    "OP_READ",
    "OP_SHRED",
    "OP_WRITE",
    "PyKernel",
    "RunResult",
    "ScalarEngine",
    "System",
    "SystemReport",
    "VectorEngine",
    "compare_runs",
    "make_engine",
    "numpy_available",
    "parse_engine_spec",
    "resolve_kernel",
]
