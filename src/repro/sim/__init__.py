"""Full-system assembly: machine, system, and result records.

* :class:`~repro.sim.machine.Machine` — caches + secure controller (+
  shred register) glued together at the physical-address level.
* :class:`~repro.sim.system.System` — machine + kernel + cores +
  processes; the object workloads run against.
* :mod:`repro.sim.results` — serialisable run summaries used by the
  benchmark harness and the analysis layer.
"""

from .machine import Machine
from .system import System, SystemReport
from .results import RunResult, compare_runs

__all__ = ["Machine", "RunResult", "System", "SystemReport", "compare_runs"]
