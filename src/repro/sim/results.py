"""Result records and baseline-vs-shredder comparisons.

The paper's headline numbers are all *relative*: write savings
(Fig. 8), read-traffic savings (Fig. 9), read-latency speedup
(Fig. 10) and relative IPC (Fig. 11). :func:`compare_runs` derives all
four from a pair of :class:`~repro.sim.system.SystemReport` objects
produced by identical workloads on the baseline and Silent Shredder
systems.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import SimulationError
from .system import SystemReport


@dataclass
class RunResult:
    """Baseline-vs-shredder comparison for one workload."""

    workload: str
    write_savings: float            # fraction of NVM data writes eliminated
    read_savings: float             # fraction of NVM data reads eliminated
    read_speedup: float             # baseline avg read latency / shredder's
    relative_ipc: float             # shredder IPC / baseline IPC
    baseline: SystemReport = None
    shredder: SystemReport = None

    def row(self) -> Dict[str, float]:
        return {
            "workload": self.workload,
            "write_savings_pct": 100.0 * self.write_savings,
            "read_savings_pct": 100.0 * self.read_savings,
            "read_speedup": self.read_speedup,
            "relative_ipc": self.relative_ipc,
        }

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe form that round-trips through :meth:`from_dict`."""
        return {
            "workload": self.workload,
            "write_savings": self.write_savings,
            "read_savings": self.read_savings,
            "read_speedup": self.read_speedup,
            "relative_ipc": self.relative_ipc,
            "baseline": self.baseline.to_dict() if self.baseline else None,
            "shredder": self.shredder.to_dict() if self.shredder else None,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RunResult":
        """Rebuild a comparison from :meth:`to_dict` output."""
        baseline = data.get("baseline")
        shredder = data.get("shredder")
        return cls(
            workload=data["workload"],
            write_savings=data["write_savings"],
            read_savings=data["read_savings"],
            read_speedup=data["read_speedup"],
            relative_ipc=data["relative_ipc"],
            baseline=SystemReport.from_dict(baseline) if baseline else None,
            shredder=SystemReport.from_dict(shredder) if shredder else None,
        )


def compare_runs(baseline: SystemReport, shredder: SystemReport,
                 workload: str = "workload") -> RunResult:
    """Derive the paper's four relative metrics from a run pair."""
    if baseline.shredder:
        raise SimulationError("first report must come from the baseline system")
    if not shredder.shredder:
        raise SimulationError("second report must come from Silent Shredder")

    write_savings = 0.0
    if baseline.memory_writes:
        write_savings = ((baseline.memory_writes - shredder.memory_writes)
                         / baseline.memory_writes)

    # Read savings: reads the shredder served as zero-fill instead of NVM.
    baseline_reads = baseline.memory_reads
    read_savings = 0.0
    if baseline_reads:
        read_savings = ((baseline_reads - shredder.memory_reads)
                        / baseline_reads)

    read_speedup = 1.0
    if shredder.avg_read_latency_ns > 0 and baseline.avg_read_latency_ns > 0:
        read_speedup = (baseline.avg_read_latency_ns
                        / shredder.avg_read_latency_ns)

    relative_ipc = 1.0
    if baseline.ipc > 0:
        relative_ipc = shredder.ipc / baseline.ipc

    return RunResult(workload=workload, write_savings=write_savings,
                     read_savings=read_savings, read_speedup=read_speedup,
                     relative_ipc=relative_ipc, baseline=baseline,
                     shredder=shredder)


def geometric_mean(values: List[float]) -> float:
    if not values:
        return 0.0
    product = 1.0
    for value in values:
        if value <= 0:
            raise SimulationError("geometric mean requires positive values")
        product *= value
    return product ** (1.0 / len(values))


def arithmetic_mean(values: List[float]) -> float:
    return sum(values) / len(values) if values else 0.0
