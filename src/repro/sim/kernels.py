"""Flat-array kernels behind the vector engine seam.

The bulk hierarchy walk (:meth:`repro.cache.hierarchy.CacheHierarchy.
access_many`) and the batch engine's epoch passes spend a measurable
share of their time on embarrassingly data-parallel integer sweeps:
block alignment, page-id derivation, and run-boundary detection over an
epoch's parallel arrays. This module packages those sweeps as kernel
objects with two interchangeable implementations:

* :class:`PyKernel` — pure stdlib loops; always available
  (``dependencies = []`` stays empty).
* :class:`NumpyKernel` — the same sweeps vectorised over ``int64``
  views of the batch's ``array('q')``/``array('b')`` buffers, selected
  automatically when numpy is importable.

Both kernels are **integer-only** and return plain Python lists (one
bulk ``.tolist()`` — element-wise indexing into numpy arrays is slower
than a list), so their outputs are bit-for-bit identical and the
simulated reports cannot depend on which backend ran. numpy is never
required: :func:`resolve_kernel` falls back to :class:`PyKernel`, and
the ``"numpy"`` spec raises :class:`~repro.errors.ExperimentError`
when the import is unavailable rather than degrading silently.
"""

from __future__ import annotations

from typing import Any, List, Sequence

from ..errors import ExperimentError

try:                                    # optional, never required
    import numpy as _np
except ImportError:                     # pragma: no cover - env dependent
    _np = None

#: Kernel specs accepted by :func:`resolve_kernel` (and the
#: ``vector[:KERNEL]`` engine grammar).
KERNEL_SPECS = ("auto", "numpy", "py")


def numpy_available() -> bool:
    """Whether the numpy kernel backend can be used in this process."""
    return _np is not None


class PyKernel:
    """Pure-Python kernel: stdlib loops over the parallel arrays."""

    name = "py"

    def align_blocks(self, addresses: Sequence[int],
                     block_size: int) -> List[int]:
        """Block-align every address (``a - a % block_size``)."""
        return [a - a % block_size for a in addresses]

    def page_ids(self, addresses: Sequence[int],
                 page_size: int) -> List[int]:
        """Page id (``a // page_size``) for every address."""
        return [a // page_size for a in addresses]

    def run_bounds(self, cores: Sequence[int], addresses: Sequence[int],
                   is_writes: Sequence[Any]) -> List[int]:
        """Start indices of maximal runs of identical ``(core, address,
        op)`` triples, with the stream length appended — the segment
        list the bulk walk collapses."""
        n = len(addresses)
        if n == 0:
            return [0]
        bounds = [0]
        prev_core = cores[0]
        prev_addr = addresses[0]
        prev_w = bool(is_writes[0])
        for i in range(1, n):
            w = bool(is_writes[i])
            if (addresses[i] != prev_addr or cores[i] != prev_core
                    or w != prev_w):
                bounds.append(i)
                prev_core, prev_addr, prev_w = cores[i], addresses[i], w
        bounds.append(n)
        return bounds


class NumpyKernel:
    """numpy kernel: the same integer sweeps, vectorised."""

    name = "numpy"

    def __init__(self) -> None:
        if _np is None:
            raise ExperimentError(
                "the numpy kernel was requested but numpy is not "
                "importable; install numpy or use the 'py' kernel")

    @staticmethod
    def _as_int64(values: Sequence[int]):
        # array('q') / array('b') expose the buffer protocol, so this is
        # zero-copy for the batch's native storage.
        return _np.asarray(values, dtype=_np.int64)

    def align_blocks(self, addresses: Sequence[int],
                     block_size: int) -> List[int]:
        addrs = self._as_int64(addresses)
        return (addrs - addrs % block_size).tolist()

    def page_ids(self, addresses: Sequence[int],
                 page_size: int) -> List[int]:
        return (self._as_int64(addresses) // page_size).tolist()

    def run_bounds(self, cores: Sequence[int], addresses: Sequence[int],
                   is_writes: Sequence[Any]) -> List[int]:
        n = len(addresses)
        if n == 0:
            return [0]
        addrs = self._as_int64(addresses)
        core_ids = self._as_int64(cores)
        ws = _np.asarray(is_writes) != 0
        change = ((addrs[1:] != addrs[:-1])
                  | (core_ids[1:] != core_ids[:-1])
                  | (ws[1:] != ws[:-1]))
        bounds = [0]
        bounds.extend((_np.flatnonzero(change) + 1).tolist())
        bounds.append(n)
        return bounds


def resolve_kernel(spec: str = "auto"):
    """Build the kernel for a ``vector[:KERNEL]`` engine spec.

    ``"auto"`` picks numpy when importable and falls back to the pure-
    Python kernel; ``"numpy"`` and ``"py"`` force a backend (``"numpy"``
    raises :class:`~repro.errors.ExperimentError` when unavailable).
    """
    if spec == "auto":
        return NumpyKernel() if _np is not None else PyKernel()
    if spec == "numpy":
        return NumpyKernel()
    if spec == "py":
        return PyKernel()
    raise ExperimentError(f"unknown vector kernel {spec!r} (expected one "
                          f"of {', '.join(KERNEL_SPECS)})")
