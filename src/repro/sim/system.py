"""System: machine + kernel + cores + cooperative task scheduler.

The object workloads run against. Tasks are generator functions that
perform work through an :class:`~repro.runtime.ExecutionContext` and
``yield`` periodically; the scheduler always resumes the task whose
core clock is furthest behind, which interleaves the cores' traffic
through the shared caches and memory channels the way concurrent
execution would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional

from ..config import SystemConfig, default_config
from ..core.policies import ShredPolicy
from ..cpu import Core
from ..errors import SimulationError
from ..kernel import Kernel
from ..obs import EventRecorder, MetricsRegistry
from ..runtime import ExecutionContext
from .machine import Machine

#: A workload: takes a context, yields whenever it wants to be preempted.
TaskFunction = Callable[[ExecutionContext], Iterator[None]]


@dataclass
class SystemReport:
    """Summary of one simulation run (the raw material for every figure)."""

    name: str
    shredder: bool
    instructions: int = 0
    cycles: float = 0.0
    ipc: float = 0.0
    memory_reads: int = 0
    memory_writes: int = 0
    zero_fill_reads: int = 0
    counter_miss_rate: float = 0.0
    avg_read_latency_ns: float = 0.0
    shreds: int = 0
    pages_zeroed: int = 0
    zeroing_memory_writes: int = 0
    fault_ns: float = 0.0
    zeroing_ns: float = 0.0
    read_energy_pj: float = 0.0
    write_energy_pj: float = 0.0
    bits_written: int = 0
    extra: Dict[str, float] = field(default_factory=dict)
    #: Full :meth:`repro.obs.MetricsRegistry.snapshot` of the run. All
    #: values are simulated quantities, so two runs of the same
    #: experiment produce identical snapshots regardless of host, which
    #: lets this field ride the result cache and the worker wire
    #: protocol without breaking byte-identical report comparisons.
    metrics: Dict[str, object] = field(default_factory=dict)
    #: Flight-recorder event log (:meth:`repro.obs.EventRecorder.snapshot`).
    #: Like ``metrics``, every field is a simulated quantity, so the log
    #: is byte-identical across hosts, engines, and serial-vs-cluster
    #: execution for the same experiment.
    events: List[Dict[str, object]] = field(default_factory=list)

    def as_dict(self) -> Dict[str, float]:
        data = {k: v for k, v in self.__dict__.items()
                if k not in ("extra", "metrics", "events")}
        data.update(self.extra)
        return data

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe form that round-trips through :meth:`from_dict`.

        Unlike :meth:`as_dict` (which flattens ``extra`` for table
        rendering), this keeps ``extra``, ``metrics``, and ``events``
        nested so reports can cross process and disk boundaries
        losslessly.
        """
        data = {k: v for k, v in self.__dict__.items()
                if k not in ("extra", "metrics", "events")}
        data["extra"] = dict(self.extra)
        data["metrics"] = dict(self.metrics)
        data["events"] = [dict(e) for e in self.events]
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SystemReport":
        """Rebuild a report from :meth:`to_dict` output.

        Unknown keys are ignored so cache entries written by newer code
        degrade gracefully instead of crashing older readers.
        """
        import dataclasses
        known = {f.name for f in dataclasses.fields(cls)}
        kwargs = {k: v for k, v in data.items() if k in known}
        kwargs["extra"] = dict(kwargs.get("extra") or {})
        kwargs["metrics"] = dict(kwargs.get("metrics") or {})
        kwargs["events"] = [dict(e) for e in kwargs.get("events") or []]
        return cls(**kwargs)


class System:
    """A complete simulated machine with an OS and CPU cores."""

    def __init__(self, config: Optional[SystemConfig] = None, *,
                 shredder: bool = True, policy: Optional[ShredPolicy] = None,
                 name: str = "system",
                 metrics: Optional[MetricsRegistry] = None,
                 events: Optional[EventRecorder] = None,
                 engine: str = "scalar") -> None:
        self.config = config if config is not None else default_config()
        self.name = name
        from .batch import parse_engine_spec
        parse_engine_spec(engine)      # raises ExperimentError if unknown
        self.engine = engine
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.events = events if events is not None else EventRecorder()
        self.machine = Machine(self.config, shredder=shredder, policy=policy,
                               metrics=self.metrics, events=self.events)
        self.kernel = Kernel(self.machine)
        self.kernel.system = self      # for TLB shootdowns on munmap
        self.cores = [Core(i, self.config.cpu)
                      for i in range(self.config.cpu.num_cores)]
        self.contexts: List[ExecutionContext] = []
        self.metrics.register_collector(self._collect_metrics)

    @property
    def shredder_enabled(self) -> bool:
        return self.machine.has_shredder

    @property
    def clock(self):
        return self.machine.clock

    def access_engine(self, kind: Optional[str] = None):
        """Build the configured access-stream engine over this system's
        controller and cache hierarchy (see :mod:`repro.sim.batch`)."""
        from .batch import make_engine
        return make_engine(kind if kind is not None else self.engine,
                           self.machine.controller,
                           hierarchy=self.machine.hierarchy,
                           shred_register=self.machine.shred_register,
                           metrics=self.metrics)

    # -- task plumbing -----------------------------------------------------------

    def new_context(self, core_id: int) -> ExecutionContext:
        """A fresh process bound to ``core_id``."""
        if core_id < 0 or core_id >= len(self.cores):
            raise SimulationError(f"no core {core_id}")
        process = self.kernel.create_process()
        ctx = ExecutionContext(self, process.pid, core_id)
        self.contexts.append(ctx)
        return ctx

    def run(self, tasks: List[TaskFunction]) -> None:
        """Run one task per core (round-robin by laggard core clock)."""
        if len(tasks) > len(self.cores):
            raise SimulationError(f"{len(tasks)} tasks but only "
                                  f"{len(self.cores)} cores")
        live: List[tuple] = []
        for core_id, task in enumerate(tasks):
            ctx = self.new_context(core_id)
            live.append([self.cores[core_id], iter(task(ctx))])
        while live:
            # Resume the task whose core is furthest behind in time.
            entry = min(live, key=lambda item: item[0].stats.cycles)
            try:
                next(entry[1])
            except StopIteration:
                entry[0].drain_stores()
                live.remove(entry)

    def run_single(self, task: TaskFunction, core_id: int = 0) -> None:
        """Convenience: run one task to completion on one core."""
        ctx = self.new_context(core_id)
        for _ in task(ctx):
            pass
        self.cores[core_id].drain_stores()

    # -- verification and statistics management -----------------------------------

    def verify_invariants(self) -> None:
        """Cross-component consistency sweep (cheap; used by tests and
        long soak runs): MESI single-writer, L4 inclusion, counter
        ranges, allocator accounting."""
        self.machine.hierarchy.directory.check_invariants()
        self.machine.hierarchy.check_inclusion()
        controller = self.machine.controller
        limit = (1 << self.config.encryption.minor_counter_bits) - 1
        cache = controller.counter_cache
        for address in cache._cache.resident_addresses():
            line = cache._cache.peek(address)
            counters = line.payload
            if counters is None:
                continue
            for minor in counters.minors:
                if minor < 0 or minor > limit:
                    raise SimulationError(
                        f"counter cache holds out-of-range minor {minor}")
        allocator = self.kernel.allocator
        if allocator.free_pages > allocator.total_pages:
            raise SimulationError("allocator free count exceeds pool size")

    def reset_stats(self) -> None:
        """Zero every statistic without touching architectural state —
        the warm-up methodology of section 5 (caches stay warm, the
        measured window starts clean)."""
        from ..cache.cache import CacheStats
        from ..core.secure_memory import SecureMemoryStats
        from ..kernel.kernel import KernelStats
        from ..kernel.zeroing import ZeroingStats
        machine = self.machine
        machine.controller.stats = SecureMemoryStats()
        # Device/channel stats are registry-backed views: reset them in
        # place so their bound instruments stay live (replacing them
        # would orphan the registry's counters).
        machine.controller.device.stats.reset()
        machine.controller.mem.stats.reset()
        machine.controller.mem.channels.reset()
        for cache in [machine.hierarchy.l3, machine.hierarchy.l4,
                      *machine.hierarchy.l1, *machine.hierarchy.l2]:
            cache.stats = CacheStats()
        machine.controller.counter_cache._cache.stats = CacheStats()
        machine.hierarchy.zero_fills = 0
        machine.hierarchy.memory_fetches = 0
        machine.hierarchy.writebacks = 0
        self.kernel.stats = KernelStats()
        self.kernel.zeroing.stats = ZeroingStats()
        for core in self.cores:
            from ..cpu.core import CoreStats
            preserved = core.stats.cycles    # time keeps flowing
            core.stats = CoreStats()
            core.stats.cycles = preserved
        if self.shred_register is not None:
            self.shred_register.commands_accepted = 0
            self.shred_register.commands_rejected = 0
        # The registry mirrors the dataclasses just zeroed; reset it with
        # them so the pull collector's monotonic publishes stay valid.
        self.metrics.reset()
        # Warm-up shreds belong to the discarded window, not the report.
        self.events.clear()

    @property
    def shred_register(self):
        return self.machine.shred_register

    def _collect_metrics(self) -> None:
        """Pull collector: publish dataclass-backed statistics into the
        registry at snapshot time.

        Push-style instruments (``mem.nvm.*``, ``mem.channel.*``,
        ``mem.ctrl.read_latency_ns``) update inline on the hot path;
        everything that already has a well-tested dataclass home is
        published here instead, so the simulation code keeps a single
        source of truth per statistic.
        """
        registry = self.metrics
        ctl = self.machine.controller.stats
        for name, value in (
                ("mem.ctrl.data_reads", ctl.data_reads),
                ("mem.ctrl.data_writes", ctl.data_writes),
                ("mem.ctrl.zero_fill_reads", ctl.zero_fill_reads),
                ("mem.ctrl.counter_fetches", ctl.counter_fetches),
                ("mem.ctrl.counter_writebacks", ctl.counter_writebacks),
                ("mem.ctrl.reencryptions", ctl.reencryptions),
                ("core.shredder.shreds", ctl.shreds),
        ):
            registry.counter(name, unit="ops").set_total(value)

        cc = self.machine.controller.counter_cache.stats
        for name, value in (
                ("cache.counter.hits", cc.hits),
                ("cache.counter.misses", cc.misses),
                ("cache.counter.evictions", cc.evictions),
                ("cache.counter.dirty_evictions", cc.dirty_evictions),
        ):
            registry.counter(name, unit="ops").set_total(value)
        registry.gauge("cache.counter.entries", unit="entries").set(
            float(len(self.machine.controller.counter_cache)))

        hierarchy = self.machine.hierarchy
        # Literal (prefix, caches) pairs so the metrics-namespace pass
        # can resolve every registered name statically (REPRO402).
        for prefix, caches in (("cache.l1", hierarchy.l1),
                               ("cache.l2", hierarchy.l2),
                               ("cache.l3", [hierarchy.l3]),
                               ("cache.l4", [hierarchy.l4])):
            for field_name in ("hits", "misses", "evictions"):
                total = sum(getattr(c.stats, field_name) for c in caches)
                registry.counter(f"{prefix}.{field_name}",
                                 unit="ops").set_total(total)
        for name, value in (
                ("cache.hierarchy.zero_fills", hierarchy.zero_fills),
                ("cache.hierarchy.memory_fetches", hierarchy.memory_fetches),
                ("cache.hierarchy.writebacks", hierarchy.writebacks),
        ):
            registry.counter(name, unit="ops").set_total(value)

        if self.shred_register is not None:
            registry.counter("core.shredder.commands_accepted",
                             unit="ops").set_total(
                                 self.shred_register.commands_accepted)
            registry.counter("core.shredder.commands_rejected",
                             unit="ops").set_total(
                                 self.shred_register.commands_rejected)

        ks = self.kernel.stats
        for name, value, unit in (
                ("kernel.faults.minor", ks.minor_faults, "ops"),
                ("kernel.faults.cow", ks.cow_faults, "ops"),
                ("kernel.faults.huge", ks.huge_faults, "ops"),
                ("kernel.faults.total_ns", ks.fault_ns, "ns"),
                ("kernel.pages.allocated", ks.pages_allocated, "ops"),
                ("kernel.pages.recycled", ks.pages_recycled, "ops"),
                ("kernel.shred_syscalls", ks.shred_syscalls, "ops"),
        ):
            registry.counter(name, unit=unit).set_total(value)
        zs = self.kernel.zeroing.stats
        for name, value, unit in (
                ("kernel.zeroing.pages_zeroed", zs.pages_zeroed, "ops"),
                ("kernel.zeroing.memory_writes", zs.memory_writes, "ops"),
                ("kernel.zeroing.memory_reads", zs.memory_reads, "ops"),
                ("kernel.zeroing.latency_ns", zs.latency_ns, "ns"),
                ("kernel.zeroing.cpu_busy_ns", zs.cpu_busy_ns, "ns"),
                ("kernel.zeroing.cache_blocks_polluted",
                 zs.cache_blocks_polluted, "ops"),
                ("kernel.zeroing.total_ns", ks.zeroing_ns, "ns"),
        ):
            registry.counter(name, unit=unit).set_total(value)

        for name, total, unit in (
                ("cpu.instructions",
                 sum(c.stats.instructions for c in self.cores), "ops"),
                ("cpu.loads", sum(c.stats.loads for c in self.cores), "ops"),
                ("cpu.stores", sum(c.stats.stores for c in self.cores), "ops"),
        ):
            registry.counter(name, unit=unit).set_total(total)
        registry.gauge("cpu.cycles", unit="cycles").set(
            max((c.stats.cycles for c in self.cores), default=0.0))

        events = self.events
        for name, value in (
                ("obs.events.emitted", events.emitted),
                ("obs.events.recorded", events.recorded),
                ("obs.events.dropped", events.dropped),
        ):
            registry.counter(name, unit="events").set_total(value)

    def dump_stats(self) -> str:
        """A gem5-style multi-section statistics dump."""
        from ..analysis.report import render_table  # repro: suppress REPRO203 -- debug printf
        report = self.report()
        sections = [f"---------- {self.name} ----------"]
        sections.append(render_table(
            [report.as_dict()], columns=["instructions", "cycles", "ipc"],
            title="[cpu]"))
        sections.append(render_table(
            [{"level": cache.name, "accesses": cache.stats.accesses,
              "miss_rate": cache.stats.miss_rate,
              "evictions": cache.stats.evictions}
             for cache in [self.machine.hierarchy.l1[0],
                           self.machine.hierarchy.l2[0],
                           self.machine.hierarchy.l3,
                           self.machine.hierarchy.l4]],
            title="[caches, core 0 private + shared]"))
        ctl = self.machine.controller.stats
        sections.append(render_table([{
            "data_reads": ctl.data_reads, "data_writes": ctl.data_writes,
            "zero_fill_reads": ctl.zero_fill_reads, "shreds": ctl.shreds,
            "counter_miss_rate": ctl.counter_miss_rate,
            "reencryptions": ctl.reencryptions,
        }], title="[secure memory controller]"))
        dev = self.machine.controller.device
        sections.append(render_table([{
            "line_writes": dev.total_line_writes(),
            "max_wear": dev.max_wear(),
            "read_energy_uJ": dev.stats.read_energy_pj / 1e6,
            "write_energy_uJ": dev.stats.write_energy_pj / 1e6,
        }], title="[nvm device]"))
        zs = self.kernel.stats
        sections.append(render_table([{
            "minor_faults": zs.minor_faults, "cow_faults": zs.cow_faults,
            "pages_recycled": zs.pages_recycled,
            "zeroing_share": zs.zeroing_fraction_of_fault_time,
        }], title="[kernel]"))
        return "\n\n".join(sections)

    # -- reporting ------------------------------------------------------------------

    def report(self) -> SystemReport:
        instructions = sum(core.stats.instructions for core in self.cores)
        busy_cores = [core for core in self.cores if core.stats.cycles > 0]
        cycles = max((core.stats.cycles for core in busy_cores), default=0.0)
        ctl = self.machine.controller.stats
        dev = self.machine.controller.device.stats
        zs = self.kernel.zeroing.stats
        report = SystemReport(
            name=self.name,
            shredder=self.shredder_enabled,
            instructions=instructions,
            cycles=cycles,
            ipc=instructions / cycles if cycles else 0.0,
            memory_reads=ctl.data_reads,
            memory_writes=ctl.data_writes,
            zero_fill_reads=ctl.zero_fill_reads,
            counter_miss_rate=ctl.counter_miss_rate,
            avg_read_latency_ns=ctl.avg_read_latency_ns,
            shreds=ctl.shreds,
            pages_zeroed=zs.pages_zeroed,
            zeroing_memory_writes=zs.memory_writes,
            fault_ns=self.kernel.stats.fault_ns,
            zeroing_ns=self.kernel.stats.zeroing_ns,
            read_energy_pj=dev.read_energy_pj,
            write_energy_pj=dev.write_energy_pj,
            bits_written=dev.bits_written,
        )
        report.extra["l4_miss_rate"] = self.machine.hierarchy.l4.stats.miss_rate
        report.extra["counter_cache_entries"] = float(
            len(self.machine.controller.counter_cache))
        report.extra["counter_hits"] = float(ctl.counter_hits)
        report.extra["counter_misses"] = float(ctl.counter_misses)
        report.extra["reencryptions"] = float(ctl.reencryptions)
        report.metrics = self.metrics.snapshot()
        report.events = self.events.snapshot()
        return report
