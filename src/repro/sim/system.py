"""System: machine + kernel + cores + cooperative task scheduler.

The object workloads run against. Tasks are generator functions that
perform work through an :class:`~repro.runtime.ExecutionContext` and
``yield`` periodically; the scheduler always resumes the task whose
core clock is furthest behind, which interleaves the cores' traffic
through the shared caches and memory channels the way concurrent
execution would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional

from ..config import SystemConfig, default_config
from ..core.policies import ShredPolicy
from ..cpu import Core
from ..errors import SimulationError
from ..kernel import Kernel
from ..runtime import ExecutionContext
from .machine import Machine

#: A workload: takes a context, yields whenever it wants to be preempted.
TaskFunction = Callable[[ExecutionContext], Iterator[None]]


@dataclass
class SystemReport:
    """Summary of one simulation run (the raw material for every figure)."""

    name: str
    shredder: bool
    instructions: int = 0
    cycles: float = 0.0
    ipc: float = 0.0
    memory_reads: int = 0
    memory_writes: int = 0
    zero_fill_reads: int = 0
    counter_miss_rate: float = 0.0
    avg_read_latency_ns: float = 0.0
    shreds: int = 0
    pages_zeroed: int = 0
    zeroing_memory_writes: int = 0
    fault_ns: float = 0.0
    zeroing_ns: float = 0.0
    read_energy_pj: float = 0.0
    write_energy_pj: float = 0.0
    bits_written: int = 0
    extra: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, float]:
        data = {k: v for k, v in self.__dict__.items() if k != "extra"}
        data.update(self.extra)
        return data

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe form that round-trips through :meth:`from_dict`.

        Unlike :meth:`as_dict` (which flattens ``extra`` for table
        rendering), this keeps ``extra`` nested so reports can cross
        process and disk boundaries losslessly.
        """
        data = {k: v for k, v in self.__dict__.items() if k != "extra"}
        data["extra"] = dict(self.extra)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SystemReport":
        """Rebuild a report from :meth:`to_dict` output.

        Unknown keys are ignored so cache entries written by newer code
        degrade gracefully instead of crashing older readers.
        """
        import dataclasses
        known = {f.name for f in dataclasses.fields(cls)}
        kwargs = {k: v for k, v in data.items() if k in known}
        kwargs["extra"] = dict(kwargs.get("extra") or {})
        return cls(**kwargs)


class System:
    """A complete simulated machine with an OS and CPU cores."""

    def __init__(self, config: Optional[SystemConfig] = None, *,
                 shredder: bool = True, policy: Optional[ShredPolicy] = None,
                 name: str = "system") -> None:
        self.config = config if config is not None else default_config()
        self.name = name
        self.machine = Machine(self.config, shredder=shredder, policy=policy)
        self.kernel = Kernel(self.machine)
        self.kernel.system = self      # for TLB shootdowns on munmap
        self.cores = [Core(i, self.config.cpu)
                      for i in range(self.config.cpu.num_cores)]
        self.contexts: List[ExecutionContext] = []

    @property
    def shredder_enabled(self) -> bool:
        return self.machine.has_shredder

    # -- task plumbing -----------------------------------------------------------

    def new_context(self, core_id: int) -> ExecutionContext:
        """A fresh process bound to ``core_id``."""
        if core_id < 0 or core_id >= len(self.cores):
            raise SimulationError(f"no core {core_id}")
        process = self.kernel.create_process()
        ctx = ExecutionContext(self, process.pid, core_id)
        self.contexts.append(ctx)
        return ctx

    def run(self, tasks: List[TaskFunction]) -> None:
        """Run one task per core (round-robin by laggard core clock)."""
        if len(tasks) > len(self.cores):
            raise SimulationError(f"{len(tasks)} tasks but only "
                                  f"{len(self.cores)} cores")
        live: List[tuple] = []
        for core_id, task in enumerate(tasks):
            ctx = self.new_context(core_id)
            live.append([self.cores[core_id], iter(task(ctx))])
        while live:
            # Resume the task whose core is furthest behind in time.
            entry = min(live, key=lambda item: item[0].stats.cycles)
            try:
                next(entry[1])
            except StopIteration:
                entry[0].drain_stores()
                live.remove(entry)

    def run_single(self, task: TaskFunction, core_id: int = 0) -> None:
        """Convenience: run one task to completion on one core."""
        ctx = self.new_context(core_id)
        for _ in task(ctx):
            pass
        self.cores[core_id].drain_stores()

    # -- verification and statistics management -----------------------------------

    def verify_invariants(self) -> None:
        """Cross-component consistency sweep (cheap; used by tests and
        long soak runs): MESI single-writer, L4 inclusion, counter
        ranges, allocator accounting."""
        self.machine.hierarchy.directory.check_invariants()
        self.machine.hierarchy.check_inclusion()
        controller = self.machine.controller
        limit = (1 << self.config.encryption.minor_counter_bits) - 1
        cache = controller.counter_cache
        for address in cache._cache.resident_addresses():
            line = cache._cache.peek(address)
            counters = line.payload
            if counters is None:
                continue
            for minor in counters.minors:
                if minor < 0 or minor > limit:
                    raise SimulationError(
                        f"counter cache holds out-of-range minor {minor}")
        allocator = self.kernel.allocator
        if allocator.free_pages > allocator.total_pages:
            raise SimulationError("allocator free count exceeds pool size")

    def reset_stats(self) -> None:
        """Zero every statistic without touching architectural state —
        the warm-up methodology of section 5 (caches stay warm, the
        measured window starts clean)."""
        from ..cache.cache import CacheStats
        from ..core.secure_memory import SecureMemoryStats
        from ..kernel.kernel import KernelStats
        from ..kernel.zeroing import ZeroingStats
        from ..mem.stats import MemoryStats
        machine = self.machine
        machine.controller.stats = SecureMemoryStats()
        machine.controller.device.stats = MemoryStats()
        machine.controller.mem.stats = MemoryStats()
        machine.controller.mem.channels.reset()
        for cache in [machine.hierarchy.l3, machine.hierarchy.l4,
                      *machine.hierarchy.l1, *machine.hierarchy.l2]:
            cache.stats = CacheStats()
        machine.controller.counter_cache._cache.stats = CacheStats()
        machine.hierarchy.zero_fills = 0
        machine.hierarchy.memory_fetches = 0
        machine.hierarchy.writebacks = 0
        self.kernel.stats = KernelStats()
        self.kernel.zeroing.stats = ZeroingStats()
        for core in self.cores:
            from ..cpu.core import CoreStats
            preserved = core.stats.cycles    # time keeps flowing
            core.stats = CoreStats()
            core.stats.cycles = preserved

    def dump_stats(self) -> str:
        """A gem5-style multi-section statistics dump."""
        from ..analysis.report import render_table
        report = self.report()
        sections = [f"---------- {self.name} ----------"]
        sections.append(render_table(
            [report.as_dict()], columns=["instructions", "cycles", "ipc"],
            title="[cpu]"))
        sections.append(render_table(
            [{"level": cache.name, "accesses": cache.stats.accesses,
              "miss_rate": cache.stats.miss_rate,
              "evictions": cache.stats.evictions}
             for cache in [self.machine.hierarchy.l1[0],
                           self.machine.hierarchy.l2[0],
                           self.machine.hierarchy.l3,
                           self.machine.hierarchy.l4]],
            title="[caches, core 0 private + shared]"))
        ctl = self.machine.controller.stats
        sections.append(render_table([{
            "data_reads": ctl.data_reads, "data_writes": ctl.data_writes,
            "zero_fill_reads": ctl.zero_fill_reads, "shreds": ctl.shreds,
            "counter_miss_rate": ctl.counter_miss_rate,
            "reencryptions": ctl.reencryptions,
        }], title="[secure memory controller]"))
        dev = self.machine.controller.device
        sections.append(render_table([{
            "line_writes": dev.total_line_writes(),
            "max_wear": dev.max_wear(),
            "read_energy_uJ": dev.stats.read_energy_pj / 1e6,
            "write_energy_uJ": dev.stats.write_energy_pj / 1e6,
        }], title="[nvm device]"))
        zs = self.kernel.stats
        sections.append(render_table([{
            "minor_faults": zs.minor_faults, "cow_faults": zs.cow_faults,
            "pages_recycled": zs.pages_recycled,
            "zeroing_share": zs.zeroing_fraction_of_fault_time,
        }], title="[kernel]"))
        return "\n\n".join(sections)

    # -- reporting ------------------------------------------------------------------

    def report(self) -> SystemReport:
        instructions = sum(core.stats.instructions for core in self.cores)
        busy_cores = [core for core in self.cores if core.stats.cycles > 0]
        cycles = max((core.stats.cycles for core in busy_cores), default=0.0)
        ctl = self.machine.controller.stats
        dev = self.machine.controller.device.stats
        zs = self.kernel.zeroing.stats
        report = SystemReport(
            name=self.name,
            shredder=self.shredder_enabled,
            instructions=instructions,
            cycles=cycles,
            ipc=instructions / cycles if cycles else 0.0,
            memory_reads=ctl.data_reads,
            memory_writes=ctl.data_writes,
            zero_fill_reads=ctl.zero_fill_reads,
            counter_miss_rate=ctl.counter_miss_rate,
            avg_read_latency_ns=ctl.avg_read_latency_ns,
            shreds=ctl.shreds,
            pages_zeroed=zs.pages_zeroed,
            zeroing_memory_writes=zs.memory_writes,
            fault_ns=self.kernel.stats.fault_ns,
            zeroing_ns=self.kernel.stats.zeroing_ns,
            read_energy_pj=dev.read_energy_pj,
            write_energy_pj=dev.write_energy_pj,
            bits_written=dev.bits_written,
        )
        report.extra["l4_miss_rate"] = self.machine.hierarchy.l4.stats.miss_rate
        report.extra["counter_cache_entries"] = float(
            len(self.machine.controller.counter_cache))
        report.extra["counter_hits"] = float(ctl.counter_hits)
        report.extra["counter_misses"] = float(ctl.counter_misses)
        report.extra["reencryptions"] = float(ctl.reencryptions)
        return report
