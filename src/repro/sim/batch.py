"""Epoch-batched access-stream engine: the vectorised sim hot path.

The scalar API drives the controller one access at a time —
``fetch_block``/``store_block`` per LLC miss or write-back — each call
paying a counter-cache probe, per-access stats bookkeeping and Python
call overhead. Real miss streams are bursty and page-local, so the
batch engine re-expresses the hot path over an :class:`AccessBatch`
(structured parallel arrays of address / op / epoch), processed one
epoch at a time in passes:

1. **page-id derivation** for the whole epoch in one sweep,
2. **run segmentation**: consecutive accesses to the same page form a
   segment; only the segment's first access pays a real counter-cache
   probe — the rest are guaranteed hits (the line cannot be evicted
   between same-page probes) and are accounted in bulk through
   :meth:`~repro.cache.counter_cache.CounterCache.record_hits`,
3. **grouped pad generation** for the segment's reads through the
   pluggable cipher seam
   (:meth:`~repro.crypto.CounterModeEngine.decrypt_many`),
4. **bulk stat publication**: uniform zero-fill runs land in the
   ``mem.ctrl.read_latency_ns`` histogram via one ``observe_many``
   instead of per-access updates.

Equivalence is the contract: for any batch, :class:`BatchEngine`
produces identical controller / device / channel statistics (and,
functionally, identical data) to :class:`ScalarEngine` replaying the
same accesses. NVM commands are still issued per access in original
order because the channel model is order-dependent. All per-access
model latencies are dyadic rationals (integer cycle counts times a
dyadic ``cycle_ns``), so bulk accounting (``k * latency``) is float-
exact against ``k`` scalar additions. Controllers that override the
datapath (DEUCE, direct encryption, i-NVMM) fall back to the scalar
loop transparently.
"""

from __future__ import annotations

import random
from array import array
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Tuple

from ..core.secure_memory import SecureMemoryController
from ..errors import AddressError, SimulationError

#: Access opcodes carried in :attr:`AccessBatch.ops`.
OP_READ = 0
OP_WRITE = 1
OP_SHRED = 2

_VALID_OPS = (OP_READ, OP_WRITE, OP_SHRED)
OP_NAMES = {OP_READ: "read", OP_WRITE: "write", OP_SHRED: "shred"}

#: Simulated nanoseconds between epoch starts (dyadic: exact in floats).
DEFAULT_EPOCH_NS = 1024.0

#: Engine kinds accepted by :func:`make_engine` and ``System(engine=...)``.
ENGINE_KINDS = ("scalar", "batch")


def pattern_block(address: int, block_size: int) -> bytes:
    """Deterministic per-address payload for functional batched stores."""
    word = (address & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "little")
    repeats, tail = divmod(block_size, 8)
    return word * repeats + word[:tail]


@dataclass
class AccessBatch:
    """A stream of memory accesses as structured parallel arrays.

    ``addresses[i]`` is the block-aligned physical address (for
    :data:`OP_SHRED`, any address inside the target page), ``ops[i]``
    one of :data:`OP_READ`/:data:`OP_WRITE`/:data:`OP_SHRED`, and
    ``epochs[i]`` a non-decreasing epoch id — all accesses of an epoch
    issue at the same simulated time, one ``epoch_ns`` apart.

    ``data`` optionally carries explicit write payloads (parallel to
    the arrays, ``None`` for non-writes); with ``patterned=True``
    functional stores instead derive a deterministic payload from the
    address via :func:`pattern_block`.
    """

    addresses: array
    ops: array
    epochs: array
    data: Optional[List[Optional[bytes]]] = None
    patterned: bool = True

    def __post_init__(self) -> None:
        self.addresses = array("q", self.addresses)
        self.ops = array("b", self.ops)
        self.epochs = array("q", self.epochs)
        n = len(self.addresses)
        if len(self.ops) != n or len(self.epochs) != n:
            raise SimulationError(
                f"AccessBatch arrays disagree on length: {n} addresses, "
                f"{len(self.ops)} ops, {len(self.epochs)} epochs")
        if self.data is not None and len(self.data) != n:
            raise SimulationError(
                f"AccessBatch data payloads ({len(self.data)}) do not "
                f"match {n} accesses")
        previous = None
        for i in range(n):
            if self.ops[i] not in _VALID_OPS:
                raise SimulationError(f"AccessBatch op {self.ops[i]} at "
                                      f"index {i} is not a valid opcode")
            if self.addresses[i] < 0:
                raise SimulationError(f"AccessBatch address at index {i} "
                                      "is negative")
            epoch = self.epochs[i]
            if previous is not None and epoch < previous:
                raise SimulationError("AccessBatch epochs must be "
                                      f"non-decreasing (index {i})")
            previous = epoch

    def __len__(self) -> int:
        return len(self.addresses)

    @property
    def num_epochs(self) -> int:
        return (self.epochs[-1] + 1) if len(self.epochs) else 0

    def payload(self, index: int, block_size: int) -> Optional[bytes]:
        """The functional write payload for access ``index``."""
        if self.data is not None and self.data[index] is not None:
            return self.data[index]
        if self.patterned:
            return pattern_block(self.addresses[index], block_size)
        return None

    def epoch_slices(self) -> Iterator[Tuple[int, int, int]]:
        """Yield ``(epoch, start, stop)`` for each occupied epoch."""
        n = len(self.addresses)
        start = 0
        while start < n:
            epoch = self.epochs[start]
            stop = start + 1
            while stop < n and self.epochs[stop] == epoch:
                stop += 1
            yield epoch, start, stop
            start = stop

    # -- builders ---------------------------------------------------------

    @classmethod
    def from_trace(cls, trace: Iterable[Tuple[int, int]], *,
                   epoch_length: int = 256,
                   patterned: bool = True) -> "AccessBatch":
        """Build a batch from ``(address, op)`` pairs, assigning epochs
        every ``epoch_length`` accesses."""
        if epoch_length <= 0:
            raise SimulationError("epoch_length must be positive")
        addresses = array("q")
        ops = array("b")
        epochs = array("q")
        for i, (address, op) in enumerate(trace):
            addresses.append(address)
            ops.append(op)
            epochs.append(i // epoch_length)
        return cls(addresses, ops, epochs, patterned=patterned)

    @classmethod
    def synthetic(cls, num_accesses: int, *, num_pages: int,
                  page_size: int = 4096, block_size: int = 64,
                  read_fraction: float = 0.7, shred_fraction: float = 0.0,
                  locality: float = 0.85, epoch_length: int = 256,
                  seed: int = 1234, patterned: bool = True) -> "AccessBatch":
        """Deterministic synthetic stream with tunable page locality.

        ``locality`` is the probability the next access stays on the
        current page (high locality produces the page-local runs the
        batch engine exploits; low locality with ``num_pages`` above
        the counter-cache capacity produces a counter-cold stream).
        ``shred_fraction`` injects page shreds (requires a shredder
        controller to execute).
        """
        if num_pages <= 0:
            raise SimulationError("synthetic batch needs at least one page")
        rng = random.Random(seed)
        blocks_per_page = page_size // block_size
        trace: List[Tuple[int, int]] = []
        page = 0
        for _ in range(num_accesses):
            if rng.random() >= locality:
                page = rng.randrange(num_pages)
            if shred_fraction > 0.0 and rng.random() < shred_fraction:
                trace.append((page * page_size, OP_SHRED))
                continue
            address = page * page_size + rng.randrange(blocks_per_page) * block_size
            op = OP_READ if rng.random() < read_fraction else OP_WRITE
            trace.append((address, op))
        return cls.from_trace(trace, epoch_length=epoch_length,
                              patterned=patterned)


@dataclass
class EngineResult:
    """Aggregate outcome of one engine run over a batch."""

    accesses: int = 0
    reads: int = 0
    writes: int = 0
    shreds: int = 0
    zero_fill_reads: int = 0
    reencryptions: int = 0
    total_latency_ns: float = 0.0
    epochs: int = 0
    #: Page-run segments processed (batch engine only; 0 for scalar).
    segments: int = 0
    #: Counter-cache probes elided via bulk hit accounting (batch only).
    bulk_hits: int = 0
    #: True when the batch engine fell back to the scalar loop because
    #: the controller overrides the baseline datapath.
    fallback: bool = False
    #: Read outputs in stream order (``collect_data=True`` only).
    data: Optional[List[Optional[bytes]]] = None

    def as_dict(self) -> dict:
        out = {k: v for k, v in self.__dict__.items() if k != "data"}
        return out


class AccessEngine:
    """Common machinery for the scalar and batch engines."""

    kind = "scalar"

    def __init__(self, controller: SecureMemoryController, *,
                 metrics=None) -> None:
        self.controller = controller
        self.metrics = metrics

    def run(self, batch: AccessBatch, *, epoch_ns: float = DEFAULT_EPOCH_NS,
            collect_data: bool = False) -> EngineResult:
        raise NotImplementedError

    def _shred(self, address: int, now: float):
        ctl = self.controller
        shred = getattr(ctl, "shred_page", None)
        if shred is None:
            raise SimulationError(
                f"{type(ctl).__name__} has no shred datapath; remove "
                "OP_SHRED accesses or use a shredder controller")
        return shred(address // ctl.page_size, now)

    def _publish(self, result: EngineResult) -> None:
        """Bulk-publish the run's totals into the metrics registry.

        Both engines publish the same instruments with the same values
        for equivalent batches, so metrics snapshots stay engine-
        agnostic (the equivalence contract covers them too).
        """
        if self.metrics is None:
            return
        for name, value in (("sim.engine.accesses", result.accesses),
                            ("sim.engine.reads", result.reads),
                            ("sim.engine.writes", result.writes),
                            ("sim.engine.shreds", result.shreds)):
            if value:
                self.metrics.counter(name, unit="ops").inc(value)

    def _finish(self, batch: AccessBatch, result: EngineResult,
                base: float, epoch_ns: float) -> EngineResult:
        result.accesses = len(batch)
        result.epochs = batch.num_epochs
        self.controller.clock.advance_to(base + batch.num_epochs * epoch_ns)
        self._publish(result)
        return result


class ScalarEngine(AccessEngine):
    """Reference engine: the per-access API replayed one call at a time."""

    kind = "scalar"

    def run(self, batch: AccessBatch, *, epoch_ns: float = DEFAULT_EPOCH_NS,
            collect_data: bool = False) -> EngineResult:
        ctl = self.controller
        base = ctl.clock.now_ns
        functional = ctl.functional
        block_size = ctl.block_size
        result = EngineResult()
        outputs: Optional[List[Optional[bytes]]] = [] if collect_data else None
        addresses, ops, epochs = batch.addresses, batch.ops, batch.epochs
        for i in range(len(batch)):
            now = base + epochs[i] * epoch_ns
            op = ops[i]
            if op == OP_READ:
                access = ctl.fetch_block(addresses[i], now)
                result.reads += 1
                if access.zero_filled:
                    result.zero_fill_reads += 1
                result.total_latency_ns += access.latency_ns
                if outputs is not None:
                    outputs.append(access.data)
            elif op == OP_WRITE:
                data = batch.payload(i, block_size) if functional else None
                access = ctl.store_block(addresses[i], data, now)
                result.writes += 1
                if access.reencrypted:
                    result.reencryptions += 1
                result.total_latency_ns += access.latency_ns
            else:
                outcome = self._shred(addresses[i], now)
                result.shreds += 1
                result.total_latency_ns += outcome.latency_ns
        result.data = outputs
        return self._finish(batch, result, base, epoch_ns)


class BatchEngine(AccessEngine):
    """Vectorised engine: probe-eliding, pad-grouping epoch processing."""

    kind = "batch"

    def run(self, batch: AccessBatch, *, epoch_ns: float = DEFAULT_EPOCH_NS,
            collect_data: bool = False) -> EngineResult:
        ctl = self.controller
        if (type(ctl).fetch_block is not SecureMemoryController.fetch_block
                or type(ctl).store_block
                is not SecureMemoryController.store_block):
            # Overridden datapath (DEUCE / direct / i-NVMM): the inline
            # fast path below would bypass the subclass semantics, so
            # replay access-equivalently through the scalar loop.
            result = ScalarEngine(ctl, metrics=self.metrics).run(
                batch, epoch_ns=epoch_ns, collect_data=collect_data)
            result.fallback = True
            return result

        base = ctl.clock.now_ns
        result = EngineResult()
        outputs: Optional[List[Optional[bytes]]] = [] if collect_data else None
        for epoch, start, stop in batch.epoch_slices():
            now = base + epoch * epoch_ns
            self._run_epoch(batch, start, stop, now, result, outputs)
        result.data = outputs
        return self._finish(batch, result, base, epoch_ns)

    # -- epoch passes -----------------------------------------------------

    def _run_epoch(self, batch: AccessBatch, start: int, stop: int,
                   now: float, result: EngineResult,
                   outputs: Optional[List[Optional[bytes]]]) -> None:
        ctl = self.controller
        addresses, ops = batch.addresses, batch.ops
        page_size = ctl.page_size
        # Pass 1: page ids for the whole epoch.
        pages = [addresses[i] // page_size for i in range(start, stop)]
        # Pass 2: segment into same-page runs; shreds stand alone.
        i = start
        while i < stop:
            if ops[i] == OP_SHRED:
                outcome = self._shred(addresses[i], now)
                result.shreds += 1
                result.total_latency_ns += outcome.latency_ns
                i += 1
                continue
            page_id = pages[i - start]
            j = i + 1
            while (j < stop and pages[j - start] == page_id
                   and ops[j] != OP_SHRED):
                j += 1
            self._run_segment(batch, i, j, page_id, now, result, outputs)
            result.segments += 1
            i = j

    def _run_segment(self, batch: AccessBatch, start: int, stop: int,
                     page_id: int, now: float, result: EngineResult,
                     outputs: Optional[List[Optional[bytes]]]) -> None:
        """One same-page run: real probe first, inline fast path after."""
        ctl = self.controller
        block_size = ctl.block_size
        functional = ctl.functional

        # First access takes the full scalar path (real counter-cache
        # probe, miss handling, dirty-eviction persistence, ...).
        first_op = batch.ops[start]
        address = batch.addresses[start]
        if first_op == OP_READ:
            access = ctl.fetch_block(address, now)
            result.reads += 1
            if access.zero_filled:
                result.zero_fill_reads += 1
            result.total_latency_ns += access.latency_ns
            if outputs is not None:
                outputs.append(access.data)
        else:
            data = batch.payload(start, block_size) if functional else None
            access = ctl.store_block(address, data, now)
            result.writes += 1
            if access.reencrypted:
                result.reencryptions += 1
            result.total_latency_ns += access.latency_ns
        if stop - start == 1:
            return

        # The page's counter line is now resident and cannot be evicted
        # by anything this segment does (every probe targets the same
        # line), so the remaining accesses are guaranteed hits: elide
        # their probes and account them in bulk at the end.
        counters = ctl.counter_cache.peek(page_id)
        if counters is None:
            raise SimulationError(
                f"page {page_id} counters not resident after segment head")
        stats = ctl.stats
        hist = ctl._read_latency_hist
        hit_latency = ctl._counter_latency_ns
        pad_ns = ctl._pad_latency_ns
        xor_ns = ctl._xor_latency_ns
        encrypted = ctl.encrypted
        zero_semantics = ctl.zero_semantics

        zero_run = 0                 # consecutive zero-fill reads pending
        pending_blocks: List[bytes] = []   # ciphertexts awaiting decrypt
        pending_ivs: List[bytes] = []
        pending_slots: List[Optional[int]] = []

        def flush_zero_run() -> None:
            nonlocal zero_run
            if not zero_run:
                return
            stats.zero_fill_reads += zero_run
            stats.read_requests += zero_run
            stats.total_read_latency_ns += zero_run * hit_latency
            if hist is not None:
                hist.observe_many(hit_latency, zero_run)
            result.reads += zero_run
            result.zero_fill_reads += zero_run
            result.total_latency_ns += zero_run * hit_latency
            if outputs is not None:
                fill = ctl._zero_block if functional else None
                outputs.extend([fill] * zero_run)
            zero_run = 0

        for index in range(start + 1, stop):
            address = batch.addresses[index]
            ctl._check_data_address(address)
            offset = ctl.offset_of(address)
            if batch.ops[index] == OP_READ:
                if zero_semantics and counters.is_shredded(offset):
                    zero_run += 1
                    continue
                flush_zero_run()
                access = ctl.mem.read_block(address, now + hit_latency)
                stats.data_reads += 1
                latency = (hit_latency
                           + max(access.latency_ns, pad_ns) + xor_ns)
                stats.read_requests += 1
                stats.total_read_latency_ns += latency
                if hist is not None:
                    hist.observe(latency)
                result.reads += 1
                result.total_latency_ns += latency
                if functional:
                    if encrypted:
                        # IVs snapshot the counters *now*; pad generation
                        # is deferred and grouped at segment end.
                        pending_blocks.append(access.data)
                        pending_ivs.append(ctl._iv(page_id, offset, counters))
                        if outputs is not None:
                            pending_slots.append(len(outputs))
                            outputs.append(None)
                        else:
                            pending_slots.append(None)
                    elif outputs is not None:
                        outputs.append(access.data)
                elif outputs is not None:
                    outputs.append(None)
            else:
                flush_zero_run()
                data = batch.payload(index, block_size) if functional else None
                if functional and (data is None or len(data) != block_size):
                    raise AddressError(
                        "functional store requires a full data block")
                if counters.bump_minor(offset):
                    latency = ctl._reencrypt_page(page_id, counters,
                                                  {offset: data}, now)
                    stats.reencryptions += 1
                    result.reencryptions += 1
                    result.writes += 1
                    result.total_latency_ns += hit_latency + latency
                    continue
                ciphertext = None
                if functional:
                    if encrypted:
                        iv = ctl._iv(page_id, offset, counters)
                        ciphertext = ctl.engine.encrypt(data, iv)
                    else:
                        ciphertext = data
                write_offset_ns = pad_ns + xor_ns
                access = ctl.mem.write_block(address, ciphertext,
                                             now + hit_latency
                                             + write_offset_ns)
                stats.data_writes += 1
                update_ns = ctl._counters_updated(page_id, counters, now)
                latency = (hit_latency + write_offset_ns
                           + access.latency_ns + update_ns)
                result.writes += 1
                result.total_latency_ns += latency

        flush_zero_run()
        if pending_blocks:
            plaintexts = ctl.engine.decrypt_many(pending_blocks, pending_ivs)
            if outputs is not None:
                for slot, plaintext in zip(pending_slots, plaintexts):
                    if slot is not None:
                        outputs[slot] = plaintext
        inline = stop - start - 1
        stats.counter_hits += inline
        ctl.counter_cache.record_hits(page_id, inline)
        result.bulk_hits += inline


def make_engine(kind: str, controller: SecureMemoryController, *,
                metrics=None) -> AccessEngine:
    """Build an access-stream engine of the given kind over a controller."""
    if kind == "scalar":
        return ScalarEngine(controller, metrics=metrics)
    if kind == "batch":
        return BatchEngine(controller, metrics=metrics)
    raise SimulationError(f"unknown access engine {kind!r} "
                          f"(expected one of {ENGINE_KINDS})")
