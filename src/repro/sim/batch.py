"""Epoch-batched access-stream engine: the vectorised sim hot path.

The scalar API drives the controller one access at a time —
``fetch_block``/``store_block`` per LLC miss or write-back — each call
paying a counter-cache probe, per-access stats bookkeeping and Python
call overhead. Real miss streams are bursty and page-local, so the
batch engine re-expresses the hot path over an :class:`AccessBatch`
(structured parallel arrays of address / op / epoch), processed one
epoch at a time in passes:

1. **page-id derivation** for the whole epoch in one sweep,
2. **run segmentation**: consecutive accesses to the same page form a
   segment; only the segment's first access pays a real counter-cache
   probe — the rest are guaranteed hits (the line cannot be evicted
   between same-page probes) and are accounted in bulk through
   :meth:`~repro.cache.counter_cache.CounterCache.record_hits`,
3. **grouped pad generation** for the segment's reads through the
   pluggable cipher seam
   (:meth:`~repro.crypto.CounterModeEngine.decrypt_many`),
4. **bulk stat publication**: uniform zero-fill runs land in the
   ``mem.ctrl.read_latency_ns`` histogram via one ``observe_many``
   instead of per-access updates.

Equivalence is the contract: for any batch, :class:`BatchEngine`
produces identical controller / device / channel statistics (and,
functionally, identical data) to :class:`ScalarEngine` replaying the
same accesses. NVM commands are still issued per access in original
order because the channel model is order-dependent. All per-access
model latencies are dyadic rationals (integer cycle counts times a
dyadic ``cycle_ns``), so bulk accounting (``k * latency``) is float-
exact against ``k`` scalar additions. Controllers that override the
datapath (DEUCE, direct encryption, i-NVMM) fall back to the scalar
loop transparently.

A batch with a ``cores`` array selects the **hierarchy datapath**: the
stream is issued from the given cores through the full L1-L4 cache
hierarchy (coherence, inclusion, writebacks) instead of straight at
the controller. The scalar engine replays it through
:meth:`~repro.cache.hierarchy.CacheHierarchy.access`; the batch and
vector engines drive the bulk walk
(:meth:`~repro.cache.hierarchy.CacheHierarchy.access_many`) one
epoch-segment at a time, with :class:`HierarchyMissPort` sitting on
the memory boundary to defer and coalesce the accounting of zero-fill
(shredded) read runs exactly as the controller-mode engine does.
Latency is accumulated in integer cycles and converted once, so the
per-engine totals are float-identical by construction.

:class:`VectorEngine` (``engine="vector"``, grammar
``vector[:numpy|:py]``) layers :mod:`repro.sim.kernels` over the batch
engine: the data-parallel sweeps (page ids, block alignment, run
boundaries) run through a pluggable flat-array kernel — numpy when
importable, a report-identical pure-Python fallback otherwise.
"""

from __future__ import annotations

import random
from array import array
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from ..core.secure_memory import SecureMemoryController
from ..errors import AddressError, ExperimentError, SimulationError
from .kernels import KERNEL_SPECS, resolve_kernel

#: Access opcodes carried in :attr:`AccessBatch.ops`.
OP_READ = 0
OP_WRITE = 1
OP_SHRED = 2

_VALID_OPS = (OP_READ, OP_WRITE, OP_SHRED)
OP_NAMES = {OP_READ: "read", OP_WRITE: "write", OP_SHRED: "shred"}

#: Simulated nanoseconds between epoch starts (dyadic: exact in floats).
DEFAULT_EPOCH_NS = 1024.0

#: Engine kinds accepted by :func:`make_engine` and ``System(engine=...)``.
ENGINE_KINDS = ("scalar", "batch", "vector")


def parse_engine_spec(spec: str) -> Tuple[str, str]:
    """Split an engine spec into ``(kind, kernel)``.

    Accepted grammar: ``"scalar"``, ``"batch"``, ``"vector"``,
    ``"vector:numpy"``, ``"vector:py"`` (bare ``vector`` means
    ``vector:auto``). Raises :class:`~repro.errors.ExperimentError`
    naming the valid kinds for anything else.
    """
    if not isinstance(spec, str):
        raise ExperimentError(f"engine spec must be a string, got "
                              f"{type(spec).__name__}")
    kind, sep, kernel = spec.partition(":")
    if kind not in ENGINE_KINDS:
        raise ExperimentError(
            f"unknown access engine {spec!r} (expected one of "
            f"{', '.join(ENGINE_KINDS)}; 'vector' also accepts a kernel "
            "suffix: 'vector:numpy' or 'vector:py')")
    if not sep:
        return kind, "auto"
    if kind != "vector":
        raise ExperimentError(
            f"engine {kind!r} does not take a kernel suffix (only "
            "'vector:numpy' / 'vector:py')")
    if kernel not in KERNEL_SPECS:
        raise ExperimentError(
            f"unknown vector kernel {kernel!r} in engine spec {spec!r} "
            f"(expected one of {', '.join(KERNEL_SPECS)})")
    return kind, kernel


def pattern_block(address: int, block_size: int) -> bytes:
    """Deterministic per-address payload for functional batched stores."""
    word = (address & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "little")
    repeats, tail = divmod(block_size, 8)
    return word * repeats + word[:tail]


@dataclass
class AccessBatch:
    """A stream of memory accesses as structured parallel arrays.

    ``addresses[i]`` is the block-aligned physical address (for
    :data:`OP_SHRED`, any address inside the target page), ``ops[i]``
    one of :data:`OP_READ`/:data:`OP_WRITE`/:data:`OP_SHRED`, and
    ``epochs[i]`` a non-decreasing epoch id — all accesses of an epoch
    issue at the same simulated time, one ``epoch_ns`` apart.

    ``data`` optionally carries explicit write payloads (parallel to
    the arrays, ``None`` for non-writes); with ``patterned=True``
    functional stores instead derive a deterministic payload from the
    address via :func:`pattern_block`.

    ``cores`` (optional, parallel) selects the hierarchy datapath: each
    access issues from that core through the L1-L4 caches instead of
    straight at the controller (engines then require an attached
    hierarchy; see :func:`make_engine`).
    """

    addresses: array
    ops: array
    epochs: array
    data: Optional[List[Optional[bytes]]] = None
    patterned: bool = True
    cores: Optional[array] = None

    def __post_init__(self) -> None:
        self.addresses = array("q", self.addresses)
        self.ops = array("b", self.ops)
        self.epochs = array("q", self.epochs)
        n = len(self.addresses)
        if len(self.ops) != n or len(self.epochs) != n:
            raise SimulationError(
                f"AccessBatch arrays disagree on length: {n} addresses, "
                f"{len(self.ops)} ops, {len(self.epochs)} epochs")
        if self.data is not None and len(self.data) != n:
            raise SimulationError(
                f"AccessBatch data payloads ({len(self.data)}) do not "
                f"match {n} accesses")
        if self.cores is not None:
            self.cores = array("q", self.cores)
            if len(self.cores) != n:
                raise SimulationError(
                    f"AccessBatch cores ({len(self.cores)}) do not match "
                    f"{n} accesses")
            for i, core in enumerate(self.cores):
                if core < 0:
                    raise SimulationError(f"AccessBatch core at index {i} "
                                          "is negative")
        previous = None
        for i in range(n):
            if self.ops[i] not in _VALID_OPS:
                raise SimulationError(f"AccessBatch op {self.ops[i]} at "
                                      f"index {i} is not a valid opcode")
            if self.addresses[i] < 0:
                raise SimulationError(f"AccessBatch address at index {i} "
                                      "is negative")
            epoch = self.epochs[i]
            if previous is not None and epoch < previous:
                raise SimulationError("AccessBatch epochs must be "
                                      f"non-decreasing (index {i})")
            previous = epoch

    def __len__(self) -> int:
        return len(self.addresses)

    @property
    def num_epochs(self) -> int:
        return (self.epochs[-1] + 1) if len(self.epochs) else 0

    def payload(self, index: int, block_size: int) -> Optional[bytes]:
        """The functional write payload for access ``index``."""
        if self.data is not None and self.data[index] is not None:
            return self.data[index]
        if self.patterned:
            return pattern_block(self.addresses[index], block_size)
        return None

    def epoch_slices(self) -> Iterator[Tuple[int, int, int]]:
        """Yield ``(epoch, start, stop)`` for each occupied epoch."""
        n = len(self.addresses)
        start = 0
        while start < n:
            epoch = self.epochs[start]
            stop = start + 1
            while stop < n and self.epochs[stop] == epoch:
                stop += 1
            yield epoch, start, stop
            start = stop

    # -- builders ---------------------------------------------------------

    @classmethod
    def from_trace(cls, trace: Iterable[Tuple[int, int]], *,
                   epoch_length: int = 256, patterned: bool = True,
                   cores: Optional[Sequence[int]] = None) -> "AccessBatch":
        """Build a batch from ``(address, op)`` pairs, assigning epochs
        every ``epoch_length`` accesses. ``cores`` (parallel to the
        trace) selects the hierarchy datapath."""
        if epoch_length <= 0:
            raise SimulationError("epoch_length must be positive")
        addresses = array("q")
        ops = array("b")
        epochs = array("q")
        for i, (address, op) in enumerate(trace):
            addresses.append(address)
            ops.append(op)
            epochs.append(i // epoch_length)
        core_array = array("q", cores) if cores is not None else None
        return cls(addresses, ops, epochs, patterned=patterned,
                   cores=core_array)

    @classmethod
    def synthetic(cls, num_accesses: int, *, num_pages: int,
                  page_size: int = 4096, block_size: int = 64,
                  read_fraction: float = 0.7, shred_fraction: float = 0.0,
                  locality: float = 0.85, epoch_length: int = 256,
                  seed: int = 1234, patterned: bool = True,
                  num_cores: Optional[int] = None,
                  burst: int = 1) -> "AccessBatch":
        """Deterministic synthetic stream with tunable page locality.

        ``locality`` is the probability the next access stays on the
        current page (high locality produces the page-local runs the
        batch engine exploits; low locality with ``num_pages`` above
        the counter-cache capacity produces a counter-cold stream).
        ``shred_fraction`` injects page shreds (requires a shredder
        controller to execute). ``num_cores`` adds a cores array (the
        hierarchy datapath) with per-page-run core affinity, drawn from
        an independent seeded stream so the address/op sequence is
        unchanged from the controller-mode batch. ``burst`` repeats
        each generated data access back-to-back (temporal reuse of one
        block, the runs the bulk hierarchy walk collapses); the random
        draws per generated access are unchanged, so ``burst=1``
        reproduces the historical stream exactly.
        """
        if num_pages <= 0:
            raise SimulationError("synthetic batch needs at least one page")
        if burst < 1:
            raise SimulationError("synthetic batch burst must be >= 1")
        rng = random.Random(seed)
        blocks_per_page = page_size // block_size
        trace: List[Tuple[int, int]] = []
        jumps: List[bool] = []
        page = 0
        while len(trace) < num_accesses:
            jumped = rng.random() >= locality
            if jumped:
                page = rng.randrange(num_pages)
            if shred_fraction > 0.0 and rng.random() < shred_fraction:
                trace.append((page * page_size, OP_SHRED))
                jumps.append(jumped)
                continue
            address = page * page_size + rng.randrange(blocks_per_page) * block_size
            op = OP_READ if rng.random() < read_fraction else OP_WRITE
            for repeat in range(min(burst, num_accesses - len(trace))):
                trace.append((address, op))
                jumps.append(jumped if repeat == 0 else False)
        cores: Optional[List[int]] = None
        if num_cores is not None:
            if num_cores <= 0:
                raise SimulationError("synthetic batch needs at least "
                                      "one core")
            core_rng = random.Random(seed ^ 0x5EED)
            core = 0
            cores = []
            for jumped in jumps:
                if jumped:
                    core = core_rng.randrange(num_cores)
                cores.append(core)
        return cls.from_trace(trace, epoch_length=epoch_length,
                              patterned=patterned, cores=cores)


@dataclass
class EngineResult:
    """Aggregate outcome of one engine run over a batch."""

    accesses: int = 0
    reads: int = 0
    writes: int = 0
    shreds: int = 0
    zero_fill_reads: int = 0
    reencryptions: int = 0
    total_latency_ns: float = 0.0
    epochs: int = 0
    #: Page-run segments processed (batch engine only; 0 for scalar).
    segments: int = 0
    #: Counter-cache probes elided via bulk hit accounting (batch only).
    bulk_hits: int = 0
    #: True when the batch engine fell back to the scalar loop because
    #: the controller overrides the baseline datapath.
    fallback: bool = False
    #: Bulk-walk counters for hierarchy-mode batch/vector runs
    #: (``runs``/``collapsed``/``fast_hits``/``slow_path``/
    #: ``zero_elided``); ``None`` otherwise. These feed the
    #: ``cache.bulk.*`` bench metrics.
    bulk: Optional[dict] = None
    #: Read outputs in stream order (``collect_data=True`` only).
    data: Optional[List[Optional[bytes]]] = None

    def as_dict(self) -> dict:
        out = {k: v for k, v in self.__dict__.items() if k != "data"}
        return out


class HierarchyMissPort:
    """The memory boundary of the bulk hierarchy walk.

    Sits between :meth:`CacheHierarchy.access_many` and the secure
    controller. Normal LLC misses and writebacks pass straight through
    to ``fetch_block``/``store_block``; what the port adds is the same
    probe elision the controller-mode batch engine performs: once a
    real fetch has made a page's counter line resident, subsequent
    zero-fill (shredded) fetches of *that page* are served inline —
    counter-hit latency, zero block — and their accounting is deferred
    and coalesced into one bulk update.

    The deferral window closes (``flush``) before **any** real
    controller entry — a fetch of another page, a non-zero fetch, a
    writeback, a shred — because any of those may evict the counter
    line whose residence the deferred ``record_hits`` requires. Within
    a window no controller state is read or written, so the flushed
    totals land exactly where the scalar walk would have put them.
    """

    def __init__(self, controller: SecureMemoryController) -> None:
        self.ctl = controller
        self._cc = controller.counter_cache
        self._page_size = controller.page_size
        self._offset_of = controller.offset_of
        self._zero = controller.zero_semantics
        self._hit_latency = controller._counter_latency_ns
        self._zero_data = (controller._zero_block if controller.functional
                           else None)
        self._page = -1        # page whose counter line is known resident
        self._pending = 0      # deferred zero-fill fetches on that page
        self._pending_start = 0.0   # sim time the deferral window opened
        self.zero_elided = 0   # total controller probes elided (metric)

    def fetch(self, address: int, now_ns: float) -> Tuple[float, bool,
                                                          Optional[bytes]]:
        """Serve one LLC miss; returns ``(latency_ns, zero_filled,
        data)`` exactly as ``fetch_block`` would."""
        ctl = self.ctl
        page = address // self._page_size
        if page == self._page and self._zero:
            ctl._check_data_address(address)
            counters = self._cc.peek(page)
            if counters is not None and counters.is_shredded(
                    self._offset_of(address)):
                if not self._pending:
                    self._pending_start = now_ns
                self._pending += 1
                self.zero_elided += 1
                return self._hit_latency, True, self._zero_data
        self.flush()
        access = ctl.fetch_block(address, now_ns)
        self._page = page
        return access.latency_ns, access.zero_filled, access.data

    def writeback(self, address: int, payload: Optional[bytes],
                  now_ns: float) -> None:
        """Route a dirty L4 victim to the controller (closing the
        deferral window first — the store may evict the counter line)."""
        self.flush()
        self._page = -1
        self.ctl.store_block(address, payload, now_ns)

    def flush(self) -> None:
        """Publish the deferred zero-fill run's accounting in bulk."""
        count = self._pending
        if not count:
            return
        self._pending = 0
        ctl = self.ctl
        if ctl.events is not None:
            # One bulk emission for the run; the recorder coalesces it
            # with the window-opening fetch's event (same kind/page), so
            # the log matches the scalar walk's per-access emissions.
            ctl.events.emit("zero_fill", self._page, self._pending_start,
                            count=count)
        stats = ctl.stats
        latency = self._hit_latency
        stats.counter_hits += count
        self._cc.record_hits(self._page, count)
        stats.zero_fill_reads += count
        stats.read_requests += count
        stats.total_read_latency_ns += count * latency
        hist = ctl._read_latency_hist
        if hist is not None:
            hist.observe_many(latency, count)

    def close(self) -> None:
        """Flush and invalidate the window (before shreds / at end)."""
        self.flush()
        self._page = -1


class AccessEngine:
    """Common machinery for the scalar, batch and vector engines."""

    kind = "scalar"

    def __init__(self, controller: SecureMemoryController, *,
                 hierarchy=None, shred_register=None, metrics=None) -> None:
        self.controller = controller
        self.hierarchy = hierarchy
        self.shred_register = shred_register
        self.metrics = metrics

    def run(self, batch: AccessBatch, *, epoch_ns: float = DEFAULT_EPOCH_NS,
            collect_data: bool = False) -> EngineResult:
        raise NotImplementedError

    def _require_hierarchy(self):
        if self.hierarchy is None:
            raise SimulationError(
                "batch carries a cores array (hierarchy datapath) but the "
                "engine has no attached cache hierarchy; build it through "
                "System.access_engine() or pass hierarchy= to make_engine")
        return self.hierarchy

    def _shred(self, address: int, now: float):
        ctl = self.controller
        shred = getattr(ctl, "shred_page", None)
        if shred is None:
            raise SimulationError(
                f"{type(ctl).__name__} has no shred datapath; remove "
                "OP_SHRED accesses or use a shredder controller")
        return shred(address // ctl.page_size, now)

    def _shred_hierarchy(self, address: int, now: float):
        """OP_SHRED on the hierarchy datapath: the full MMIO register
        path (cache invalidation + counter update + MMIO latency).
        Both engines share this helper, so equivalence is structural."""
        register = self.shred_register
        if register is None:
            raise SimulationError(
                "hierarchy batch contains OP_SHRED but no shred register "
                "is attached; use a shredder system or drop the shreds")
        page_size = self.controller.page_size
        return register.write(address - address % page_size,
                              kernel_mode=True, now_ns=now)

    def _publish(self, result: EngineResult) -> None:
        """Bulk-publish the run's totals into the metrics registry.

        Both engines publish the same instruments with the same values
        for equivalent batches, so metrics snapshots stay engine-
        agnostic (the equivalence contract covers them too).
        """
        if self.metrics is None:
            return
        for name, value in (("sim.engine.accesses", result.accesses),
                            ("sim.engine.reads", result.reads),
                            ("sim.engine.writes", result.writes),
                            ("sim.engine.shreds", result.shreds)):
            if value:
                self.metrics.counter(name, unit="ops").inc(value)

    def _finish(self, batch: AccessBatch, result: EngineResult,
                base: float, epoch_ns: float) -> EngineResult:
        result.accesses = len(batch)
        result.epochs = batch.num_epochs
        self.controller.clock.advance_to(base + batch.num_epochs * epoch_ns)
        self._publish(result)
        return result


class ScalarEngine(AccessEngine):
    """Reference engine: the per-access API replayed one call at a time."""

    kind = "scalar"

    def run(self, batch: AccessBatch, *, epoch_ns: float = DEFAULT_EPOCH_NS,
            collect_data: bool = False) -> EngineResult:
        if batch.cores is not None:
            return self._run_hierarchy(batch, epoch_ns=epoch_ns,
                                       collect_data=collect_data)
        ctl = self.controller
        base = ctl.clock.now_ns
        functional = ctl.functional
        block_size = ctl.block_size
        result = EngineResult()
        outputs: Optional[List[Optional[bytes]]] = [] if collect_data else None
        addresses, ops, epochs = batch.addresses, batch.ops, batch.epochs
        for i in range(len(batch)):
            now = base + epochs[i] * epoch_ns
            op = ops[i]
            if op == OP_READ:
                access = ctl.fetch_block(addresses[i], now)
                result.reads += 1
                if access.zero_filled:
                    result.zero_fill_reads += 1
                result.total_latency_ns += access.latency_ns
                if outputs is not None:
                    outputs.append(access.data)
            elif op == OP_WRITE:
                data = batch.payload(i, block_size) if functional else None
                access = ctl.store_block(addresses[i], data, now)
                result.writes += 1
                if access.reencrypted:
                    result.reencryptions += 1
                result.total_latency_ns += access.latency_ns
            else:
                outcome = self._shred(addresses[i], now)
                result.shreds += 1
                result.total_latency_ns += outcome.latency_ns
        result.data = outputs
        return self._finish(batch, result, base, epoch_ns)

    def _run_hierarchy(self, batch: AccessBatch, *, epoch_ns: float,
                       collect_data: bool) -> EngineResult:
        """Hierarchy datapath, one ``CacheHierarchy.access`` per access.

        Latency is accumulated in integer cycles and converted once
        (``cycle_ns`` is dyadic, so the product is exact), with shred
        latencies summed separately in stream order — the bulk engines
        mirror this accumulation structure so the float totals are
        identical, not merely close.
        """
        hierarchy = self._require_hierarchy()
        ctl = self.controller
        base = ctl.clock.now_ns
        cycle_ns = ctl.config.cpu.cycle_ns
        functional = ctl.functional
        block_size = ctl.block_size
        result = EngineResult()
        outputs: Optional[List[Optional[bytes]]] = [] if collect_data else None
        cores, addresses = batch.cores, batch.addresses
        ops, epochs = batch.ops, batch.epochs
        reencrypt_base = ctl.stats.reencryptions
        total_cycles = 0
        shred_ns = 0.0
        for i in range(len(batch)):
            now = base + epochs[i] * epoch_ns
            op = ops[i]
            if op == OP_SHRED:
                outcome = self._shred_hierarchy(addresses[i], now)
                result.shreds += 1
                shred_ns += outcome.latency_ns
                continue
            is_write = op == OP_WRITE
            data = (batch.payload(i, block_size)
                    if is_write and functional else None)
            access = hierarchy.access(cores[i], addresses[i], is_write,
                                      data=data, now_ns=now)
            total_cycles += access.latency_cycles
            if access.hit_level == "ZERO":
                result.zero_fill_reads += 1
            if is_write:
                result.writes += 1
            else:
                result.reads += 1
                if outputs is not None:
                    outputs.append(access.data)
        result.reencryptions = ctl.stats.reencryptions - reencrypt_base
        result.total_latency_ns = total_cycles * cycle_ns + shred_ns
        result.data = outputs
        return self._finish(batch, result, base, epoch_ns)


class BatchEngine(AccessEngine):
    """Vectorised engine: probe-eliding, pad-grouping epoch processing."""

    kind = "batch"

    #: Kernel driving the data-parallel sweeps; ``None`` uses inline
    #: loops (the vector engine plugs a :mod:`repro.sim.kernels` object
    #: in here).
    kernel = None

    def run(self, batch: AccessBatch, *, epoch_ns: float = DEFAULT_EPOCH_NS,
            collect_data: bool = False) -> EngineResult:
        ctl = self.controller
        if (type(ctl).fetch_block is not SecureMemoryController.fetch_block
                or type(ctl).store_block
                is not SecureMemoryController.store_block):
            # Overridden datapath (DEUCE / direct / i-NVMM): the inline
            # fast path below would bypass the subclass semantics, so
            # replay access-equivalently through the scalar loop.
            result = ScalarEngine(ctl, hierarchy=self.hierarchy,
                                  shred_register=self.shred_register,
                                  metrics=self.metrics).run(
                batch, epoch_ns=epoch_ns, collect_data=collect_data)
            result.fallback = True
            return result
        if batch.cores is not None:
            return self._run_hierarchy_bulk(batch, epoch_ns=epoch_ns,
                                            collect_data=collect_data)

        base = ctl.clock.now_ns
        result = EngineResult()
        outputs: Optional[List[Optional[bytes]]] = [] if collect_data else None
        for epoch, start, stop in batch.epoch_slices():
            now = base + epoch * epoch_ns
            self._run_epoch(batch, start, stop, now, result, outputs)
        result.data = outputs
        return self._finish(batch, result, base, epoch_ns)

    # -- the hierarchy datapath -------------------------------------------

    def _run_hierarchy_bulk(self, batch: AccessBatch, *, epoch_ns: float,
                            collect_data: bool) -> EngineResult:
        """Hierarchy datapath through the bulk walk, one epoch-segment
        per ``access_many`` call, shreds standing alone between them."""
        hierarchy = self._require_hierarchy()
        ctl = self.controller
        base = ctl.clock.now_ns
        cycle_ns = ctl.config.cpu.cycle_ns
        functional = ctl.functional
        block_size = ctl.block_size
        result = EngineResult()
        bulk_totals = {"runs": 0, "collapsed": 0, "fast_hits": 0,
                       "slow_path": 0, "zero_elided": 0}
        outputs: Optional[List[Optional[bytes]]] = [] if collect_data else None
        port = HierarchyMissPort(ctl)
        reencrypt_base = ctl.stats.reencryptions
        total_cycles = 0
        shred_ns = 0.0
        cores, addresses, ops = batch.cores, batch.addresses, batch.ops
        payload = batch.payload
        kernel = self.kernel
        for epoch, start, stop in batch.epoch_slices():
            now = base + epoch * epoch_ns
            i = start
            while i < stop:
                if ops[i] == OP_SHRED:
                    # The register path enters the controller: close the
                    # port's deferral window first.
                    port.close()
                    outcome = self._shred_hierarchy(addresses[i], now)
                    result.shreds += 1
                    shred_ns += outcome.latency_ns
                    i += 1
                    continue
                j = i + 1
                while j < stop and ops[j] != OP_SHRED:
                    j += 1
                payloads = None
                if functional:
                    payloads = [payload(k, block_size)
                                if ops[k] == OP_WRITE else None
                                for k in range(i, j)]
                bulk = hierarchy.access_many(
                    cores[i:j], addresses[i:j], ops[i:j], now,
                    payloads=payloads, collect_data=collect_data,
                    kernel=kernel, port=port)
                total_cycles += bulk.latency_cycles
                result.reads += bulk.reads
                result.writes += bulk.writes
                result.zero_fill_reads += bulk.zero_fills
                result.segments += bulk.runs
                result.bulk_hits += bulk.collapsed
                bulk_totals["runs"] += bulk.runs
                bulk_totals["collapsed"] += bulk.collapsed
                bulk_totals["fast_hits"] += bulk.fast_hits
                bulk_totals["slow_path"] += bulk.slow_path
                if outputs is not None and bulk.data:
                    outputs.extend(bulk.data)
                i = j
        port.close()
        bulk_totals["zero_elided"] = port.zero_elided
        result.bulk = bulk_totals
        result.reencryptions = ctl.stats.reencryptions - reencrypt_base
        result.total_latency_ns = total_cycles * cycle_ns + shred_ns
        result.data = outputs
        return self._finish(batch, result, base, epoch_ns)

    # -- epoch passes -----------------------------------------------------

    def _page_ids(self, addresses: array, start: int, stop: int,
                  page_size: int) -> List[int]:
        """Page ids for one epoch slice (the vector engine overrides
        this with a kernel sweep)."""
        return [addresses[i] // page_size for i in range(start, stop)]

    def _run_epoch(self, batch: AccessBatch, start: int, stop: int,
                   now: float, result: EngineResult,
                   outputs: Optional[List[Optional[bytes]]]) -> None:
        ctl = self.controller
        addresses, ops = batch.addresses, batch.ops
        page_size = ctl.page_size
        # Pass 1: page ids for the whole epoch.
        pages = self._page_ids(addresses, start, stop, page_size)
        # Pass 2: segment into same-page runs; shreds stand alone.
        i = start
        while i < stop:
            if ops[i] == OP_SHRED:
                outcome = self._shred(addresses[i], now)
                result.shreds += 1
                result.total_latency_ns += outcome.latency_ns
                i += 1
                continue
            page_id = pages[i - start]
            j = i + 1
            while (j < stop and pages[j - start] == page_id
                   and ops[j] != OP_SHRED):
                j += 1
            self._run_segment(batch, i, j, page_id, now, result, outputs)
            result.segments += 1
            i = j

    def _run_segment(self, batch: AccessBatch, start: int, stop: int,
                     page_id: int, now: float, result: EngineResult,
                     outputs: Optional[List[Optional[bytes]]]) -> None:
        """One same-page run: real probe first, inline fast path after."""
        ctl = self.controller
        block_size = ctl.block_size
        functional = ctl.functional

        # First access takes the full scalar path (real counter-cache
        # probe, miss handling, dirty-eviction persistence, ...).
        first_op = batch.ops[start]
        address = batch.addresses[start]
        if first_op == OP_READ:
            access = ctl.fetch_block(address, now)
            result.reads += 1
            if access.zero_filled:
                result.zero_fill_reads += 1
            result.total_latency_ns += access.latency_ns
            if outputs is not None:
                outputs.append(access.data)
        else:
            data = batch.payload(start, block_size) if functional else None
            access = ctl.store_block(address, data, now)
            result.writes += 1
            if access.reencrypted:
                result.reencryptions += 1
            result.total_latency_ns += access.latency_ns
        if stop - start == 1:
            return

        # The page's counter line is now resident and cannot be evicted
        # by anything this segment does (every probe targets the same
        # line), so the remaining accesses are guaranteed hits: elide
        # their probes and account them in bulk at the end.
        counters = ctl.counter_cache.peek(page_id)
        if counters is None:
            raise SimulationError(
                f"page {page_id} counters not resident after segment head")
        stats = ctl.stats
        hist = ctl._read_latency_hist
        hit_latency = ctl._counter_latency_ns
        pad_ns = ctl._pad_latency_ns
        xor_ns = ctl._xor_latency_ns
        encrypted = ctl.encrypted
        zero_semantics = ctl.zero_semantics

        zero_run = 0                 # consecutive zero-fill reads pending
        pending_blocks: List[bytes] = []   # ciphertexts awaiting decrypt
        pending_ivs: List[bytes] = []
        pending_slots: List[Optional[int]] = []

        def flush_zero_run() -> None:
            nonlocal zero_run
            if not zero_run:
                return
            if ctl.events is not None:
                # Every access in the run shares this epoch's ``now``,
                # so one bulk emission coalesces exactly like the
                # scalar engine's per-access zero_fill events.
                ctl.events.emit("zero_fill", page_id, now, count=zero_run)
            stats.zero_fill_reads += zero_run
            stats.read_requests += zero_run
            stats.total_read_latency_ns += zero_run * hit_latency
            if hist is not None:
                hist.observe_many(hit_latency, zero_run)
            result.reads += zero_run
            result.zero_fill_reads += zero_run
            result.total_latency_ns += zero_run * hit_latency
            if outputs is not None:
                fill = ctl._zero_block if functional else None
                outputs.extend([fill] * zero_run)
            zero_run = 0

        for index in range(start + 1, stop):
            address = batch.addresses[index]
            ctl._check_data_address(address)
            offset = ctl.offset_of(address)
            if batch.ops[index] == OP_READ:
                if zero_semantics and counters.is_shredded(offset):
                    zero_run += 1
                    continue
                flush_zero_run()
                access = ctl.mem.read_block(address, now + hit_latency)
                stats.data_reads += 1
                latency = (hit_latency
                           + max(access.latency_ns, pad_ns) + xor_ns)
                stats.read_requests += 1
                stats.total_read_latency_ns += latency
                if hist is not None:
                    hist.observe(latency)
                result.reads += 1
                result.total_latency_ns += latency
                if functional:
                    if encrypted:
                        # IVs snapshot the counters *now*; pad generation
                        # is deferred and grouped at segment end.
                        pending_blocks.append(access.data)
                        pending_ivs.append(ctl._iv(page_id, offset, counters))
                        if outputs is not None:
                            pending_slots.append(len(outputs))
                            outputs.append(None)
                        else:
                            pending_slots.append(None)
                    elif outputs is not None:
                        outputs.append(access.data)
                elif outputs is not None:
                    outputs.append(None)
            else:
                flush_zero_run()
                data = batch.payload(index, block_size) if functional else None
                if functional and (data is None or len(data) != block_size):
                    raise AddressError(
                        "functional store requires a full data block")
                if ctl.events is not None and zero_semantics \
                        and counters.is_shredded(offset):
                    # Mirror of store_block's emission: the inline write
                    # path bypasses the controller entry point.
                    ctl.events.emit("shredded_writeback", page_id, now,
                                    block=offset)
                if counters.bump_minor(offset):
                    if ctl.events is not None:
                        ctl.events.emit("minor_overflow", page_id, now,
                                        block=offset)
                    latency = ctl._reencrypt_page(page_id, counters,
                                                  {offset: data}, now)
                    stats.reencryptions += 1
                    result.reencryptions += 1
                    result.writes += 1
                    result.total_latency_ns += hit_latency + latency
                    continue
                ciphertext = None
                if functional:
                    if encrypted:
                        iv = ctl._iv(page_id, offset, counters)
                        ciphertext = ctl.engine.encrypt(data, iv)
                    else:
                        ciphertext = data
                write_offset_ns = pad_ns + xor_ns
                access = ctl.mem.write_block(address, ciphertext,
                                             now + hit_latency
                                             + write_offset_ns)
                stats.data_writes += 1
                update_ns = ctl._counters_updated(page_id, counters, now)
                latency = (hit_latency + write_offset_ns
                           + access.latency_ns + update_ns)
                result.writes += 1
                result.total_latency_ns += latency

        flush_zero_run()
        if pending_blocks:
            plaintexts = ctl.engine.decrypt_many(pending_blocks, pending_ivs)
            if outputs is not None:
                for slot, plaintext in zip(pending_slots, plaintexts):
                    if slot is not None:
                        outputs[slot] = plaintext
        inline = stop - start - 1
        stats.counter_hits += inline
        ctl.counter_cache.record_hits(page_id, inline)
        result.bulk_hits += inline


class VectorEngine(BatchEngine):
    """Batch engine with the data-parallel sweeps behind a kernel seam.

    Identical control flow to :class:`BatchEngine`; the page-id pass
    and the bulk walk's alignment/run-boundary sweeps run through a
    :mod:`repro.sim.kernels` kernel — numpy when importable, the
    pure-Python fallback otherwise. Kernel choice cannot leak into any
    simulated result (both kernels return identical lists), so reports
    stay byte-identical across backends.
    """

    kind = "vector"

    def __init__(self, controller: SecureMemoryController, *,
                 hierarchy=None, shred_register=None, metrics=None,
                 kernel=None) -> None:
        super().__init__(controller, hierarchy=hierarchy,
                         shred_register=shred_register, metrics=metrics)
        self.kernel = kernel if kernel is not None else resolve_kernel("auto")

    def _page_ids(self, addresses: array, start: int, stop: int,
                  page_size: int) -> List[int]:
        return self.kernel.page_ids(addresses[start:stop], page_size)


def make_engine(kind: str, controller: SecureMemoryController, *,
                hierarchy=None, shred_register=None,
                metrics=None) -> AccessEngine:
    """Build an access-stream engine from an engine spec.

    ``kind`` follows the :func:`parse_engine_spec` grammar:
    ``"scalar"``, ``"batch"``, ``"vector"``, ``"vector:numpy"``,
    ``"vector:py"``. ``hierarchy``/``shred_register`` attach the cache
    datapath (required to run batches that carry a cores array).
    Unknown specs raise :class:`~repro.errors.ExperimentError` naming
    the valid kinds.
    """
    base_kind, kernel_spec = parse_engine_spec(kind)
    if base_kind == "scalar":
        return ScalarEngine(controller, hierarchy=hierarchy,
                            shred_register=shred_register, metrics=metrics)
    if base_kind == "batch":
        return BatchEngine(controller, hierarchy=hierarchy,
                           shred_register=shred_register, metrics=metrics)
    return VectorEngine(controller, hierarchy=hierarchy,
                        shred_register=shred_register, metrics=metrics,
                        kernel=resolve_kernel(kernel_spec))
