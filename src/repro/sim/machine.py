"""Machine: the hardware half of the full system.

Couples the cache hierarchy to a secure memory controller (baseline
counter-mode, or Silent Shredder with its MMIO shred register) and
exposes physical-address load/store plus the shred datapath. The
kernel model and CPU cores sit on top.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..clock import SimClock
from ..config import SystemConfig
from ..core import (SecureMemoryController, ShredRegister,
                    SilentShredderController)
from ..core.policies import ShredPolicy
from ..cache import CacheHierarchy, MemoryFetch


class Machine:
    """Hardware assembly at the physical-address level."""

    def __init__(self, config: SystemConfig, *, shredder: bool = True,
                 policy: Optional[ShredPolicy] = None,
                 metrics=None, events=None,
                 clock: Optional[SimClock] = None) -> None:
        self.config = config
        self.functional = config.functional
        self.block_size = config.block_size
        self.metrics = metrics
        self.events = events
        self.clock = clock if clock is not None else SimClock()
        if shredder:
            self.controller: SecureMemoryController = SilentShredderController(
                config, policy=policy, metrics=metrics, events=events,
                clock=self.clock)
        else:
            self.controller = SecureMemoryController(config, metrics=metrics,
                                                     events=events,
                                                     clock=self.clock)
        self.hierarchy = CacheHierarchy(config, self._on_miss, self._on_writeback)
        self.shred_register: Optional[ShredRegister] = None
        if shredder:
            self.shred_register = ShredRegister(self.controller, self.hierarchy)
        self.has_shredder = shredder

    # -- hierarchy <-> controller glue ------------------------------------------

    def _on_miss(self, address: int, now_ns: float) -> MemoryFetch:
        result = self.controller.fetch_block(address, now_ns)
        return MemoryFetch(data=result.data, latency_ns=result.latency_ns,
                           zero_filled=result.zero_filled)

    def _on_writeback(self, address: int, data: Optional[bytes],
                      now_ns: float) -> None:
        self.controller.store_block(address, data, now_ns)

    # -- physical-address access helpers -----------------------------------------

    def load(self, core: int, address: int, now_ns: float = 0.0):
        """Load the block containing ``address`` through the caches."""
        return self.hierarchy.access(core, address, False, now_ns=now_ns)

    def store(self, core: int, address: int, data: Optional[bytes] = None,
              now_ns: float = 0.0, merge: Optional[Tuple[int, bytes]] = None):
        """Store to the block containing ``address`` through the caches."""
        return self.hierarchy.access(core, address, True, data=data,
                                     now_ns=now_ns, merge=merge)

    def read_bytes(self, core: int, address: int, length: int,
                   now_ns: float = 0.0) -> Tuple[bytes, int]:
        """Functional convenience: read ``length`` bytes (may span blocks).

        Returns ``(data, total_latency_cycles)``.
        """
        out = bytearray()
        cycles = 0
        position = address
        remaining = length
        while remaining > 0:
            block_start = position - position % self.block_size
            offset = position - block_start
            take = min(self.block_size - offset, remaining)
            access = self.hierarchy.access(core, block_start, False,
                                           now_ns=now_ns)
            cycles += access.latency_cycles
            chunk = access.data if access.data is not None else bytes(self.block_size)
            out.extend(chunk[offset:offset + take])
            position += take
            remaining -= take
        return bytes(out), cycles

    def write_bytes(self, core: int, address: int, data: bytes,
                    now_ns: float = 0.0) -> int:
        """Functional convenience: write bytes with read-modify-write."""
        cycles = 0
        position = address
        view = memoryview(data)
        while view:
            block_start = position - position % self.block_size
            offset = position - block_start
            take = min(self.block_size - offset, len(view))
            access = self.hierarchy.access(core, block_start, True,
                                           now_ns=now_ns,
                                           merge=(offset, bytes(view[:take])))
            cycles += access.latency_cycles
            position += take
            view = view[take:]
        return cycles

    # -- statistics -----------------------------------------------------------------

    def memory_write_count(self) -> int:
        """NVM data-block writes so far (the Figure 8 numerator)."""
        return self.controller.stats.data_writes

    def memory_read_count(self) -> int:
        """NVM data-block reads so far."""
        return self.controller.stats.data_reads

    def zero_fill_count(self) -> int:
        return self.controller.stats.zero_fill_reads
