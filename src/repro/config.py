"""System configuration (Table 1 of the paper) and derived constants.

The defaults reproduce the baseline system of the paper:

* 8-core x86-64 processor at 2 GHz,
* 4-level cache hierarchy (L1 64 KB / L2 512 KB private; L3 8 MB / L4 64 MB
  shared), 64 B blocks, 8-way, LRU, MESI coherence,
* 16 GB NVM main memory over 2 channels of 12.8 GB/s,
* 75 ns read latency, 150 ns write latency,
* a 4 MB, 8-way, 10-cycle counter (IV) cache,
* 4 KB pages, 64-bit major counters and 7-bit minor counters.

Everything is an explicit dataclass so experiments can sweep parameters
(e.g. the Figure 12 counter-cache size sweep) without touching code.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from .errors import ConfigError

KB = 1024
MB = 1024 * KB
GB = 1024 * MB


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigError(message)


def is_power_of_two(value: int) -> bool:
    """Return True when ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and latency of one set-associative cache level."""

    name: str
    size_bytes: int
    associativity: int = 8
    block_size: int = 64
    latency_cycles: int = 2
    replacement: str = "lru"
    shared: bool = False

    def __post_init__(self) -> None:
        _require(is_power_of_two(self.block_size),
                 f"{self.name}: block size must be a power of two")
        _require(self.size_bytes % (self.block_size * self.associativity) == 0,
                 f"{self.name}: size must be a multiple of block_size*associativity")
        _require(self.associativity >= 1, f"{self.name}: associativity must be >= 1")
        _require(self.latency_cycles >= 0, f"{self.name}: latency must be non-negative")

    @property
    def num_blocks(self) -> int:
        return self.size_bytes // self.block_size

    @property
    def num_sets(self) -> int:
        return self.num_blocks // self.associativity


@dataclass(frozen=True)
class NVMConfig:
    """Timing, energy and endurance model of the NVM device (PCM-like)."""

    capacity_bytes: int = 16 * GB
    read_latency_ns: float = 75.0
    write_latency_ns: float = 150.0
    # Representative PCM energy numbers (pJ per 64B line access); used for
    # relative power comparisons, not absolute watts.
    read_energy_pj: float = 2000.0
    write_energy_pj: float = 16000.0
    # Endurance: writes per line before failure; PCM is 1e7..1e8 (paper S1).
    endurance_writes: int = 10_000_000
    num_channels: int = 2
    channel_bandwidth_gbps: float = 12.8   # GB/s per channel
    # Start-Gap wear levelling (Qureshi et al. [30]); one spare line is
    # added to the device and the gap advances every `start_gap_interval`
    # writes.
    start_gap: bool = False
    start_gap_interval: int = 100
    start_gap_region_lines: int = 256

    def __post_init__(self) -> None:
        _require(self.capacity_bytes > 0, "NVM capacity must be positive")
        _require(self.num_channels >= 1, "need at least one memory channel")
        _require(self.read_latency_ns > 0 and self.write_latency_ns > 0,
                 "NVM latencies must be positive")


@dataclass(frozen=True)
class DRAMConfig:
    """DRAM device used for the comparison points in Table 2 / Fig. 4."""

    capacity_bytes: int = 16 * GB
    read_latency_ns: float = 50.0
    write_latency_ns: float = 50.0
    read_energy_pj: float = 1300.0
    write_energy_pj: float = 1300.0
    refresh_power_mw: float = 150.0
    num_channels: int = 2
    channel_bandwidth_gbps: float = 12.8


@dataclass(frozen=True)
class EncryptionConfig:
    """Counter-mode encryption parameters (section 2.2 of the paper)."""

    enabled: bool = True            # False models a plain (DRAM-style) system
    cipher: str = "xorshift"        # "aes" for real AES-128, "xorshift" fast
    key: bytes = b"silent-shredder!"  # 16-byte AES-128 key
    major_counter_bits: int = 64
    minor_counter_bits: int = 7
    # Latency of generating a one-time pad (AES over the IV). Overlapped
    # with the NVM fetch in counter mode; only the XOR hits the critical
    # path, but pad latency matters when the data arrives faster (shredded
    # reads never need a pad at all).
    pad_latency_cycles: int = 40
    xor_latency_cycles: int = 1
    integrity: bool = True          # Bonsai Merkle Tree over counters

    def __post_init__(self) -> None:
        _require(len(self.key) == 16, "AES-128 requires a 16-byte key")
        _require(self.minor_counter_bits >= 2, "minor counters need >= 2 bits")
        _require(self.major_counter_bits in (32, 64), "major counter is 32 or 64 bits")

    @property
    def minor_counter_max(self) -> int:
        """Largest representable minor counter value (e.g. 127 for 7 bits)."""
        return (1 << self.minor_counter_bits) - 1


@dataclass(frozen=True)
class CounterCacheConfig:
    """The on-chip IV/counter cache (4 MB, 8-way, 10 cycles in Table 1)."""

    size_bytes: int = 4 * MB
    associativity: int = 8
    block_size: int = 64
    latency_cycles: int = 10
    write_policy: str = "writeback"   # "writeback" (battery-backed) | "writethrough"

    def __post_init__(self) -> None:
        _require(self.write_policy in ("writeback", "writethrough"),
                 "counter cache write policy must be writeback or writethrough")
        _require(self.size_bytes % (self.block_size * self.associativity) == 0,
                 "counter cache size must be a multiple of block_size*associativity")


@dataclass(frozen=True)
class CPUConfig:
    """Processor model parameters."""

    num_cores: int = 8
    clock_ghz: float = 2.0
    base_cpi: float = 1.0
    store_buffer_entries: int = 8
    # TLB model (0 entries disables it; the calibrated figure benchmarks
    # run without it, the huge-page study enables it).
    tlb_entries: int = 0
    tlb_miss_penalty_cycles: int = 50

    def __post_init__(self) -> None:
        _require(self.num_cores >= 1, "need at least one core")
        _require(self.clock_ghz > 0, "clock must be positive")

    @property
    def cycle_ns(self) -> float:
        """Duration of one core clock cycle in nanoseconds."""
        return 1.0 / self.clock_ghz

    def ns_to_cycles(self, ns: float) -> int:
        """Convert a nanosecond duration to (rounded-up) core cycles."""
        cycles = ns * self.clock_ghz
        return int(cycles) if float(int(cycles)) == cycles else int(cycles) + 1


@dataclass(frozen=True)
class KernelConfig:
    """Kernel model parameters (Linux-like behaviour from sections 2.3/5)."""

    page_size: int = 4 * KB
    zeroing_strategy: str = "nontemporal"  # temporal | nontemporal | dma | rowclone | shred
    # Cycles of kernel bookkeeping per page fault, excluding the zeroing
    # itself (fault entry/exit, vma lookup, pte install).
    fault_overhead_cycles: int = 700
    # Cycles per cache block for the CPU store loop (movq/movntq issue cost).
    store_issue_cycles: int = 1
    zero_page_cow: bool = True     # Linux zero-page + copy-on-write behaviour
    prezero_pool_pages: int = 0    # FreeBSD-style pool of pre-zeroed pages
    huge_page_size: int = 2 * 1024 * KB   # 2 MB huge pages (section 5)

    def __post_init__(self) -> None:
        _require(is_power_of_two(self.page_size), "page size must be a power of two")
        _require(self.zeroing_strategy in ZEROING_STRATEGIES,
                 f"unknown zeroing strategy {self.zeroing_strategy!r}")
        _require(self.huge_page_size % self.page_size == 0,
                 "huge page size must be a multiple of the base page size")


ZEROING_STRATEGIES = ("temporal", "nontemporal", "dma", "rowclone", "shred", "none")


@dataclass(frozen=True)
class SystemConfig:
    """Complete system configuration: the reproduction of Table 1."""

    cpu: CPUConfig = field(default_factory=CPUConfig)
    l1: CacheConfig = field(default_factory=lambda: CacheConfig(
        "L1", size_bytes=64 * KB, associativity=8, latency_cycles=2))
    l2: CacheConfig = field(default_factory=lambda: CacheConfig(
        "L2", size_bytes=512 * KB, associativity=8, latency_cycles=8))
    l3: CacheConfig = field(default_factory=lambda: CacheConfig(
        "L3", size_bytes=8 * MB, associativity=8, latency_cycles=25, shared=True))
    l4: CacheConfig = field(default_factory=lambda: CacheConfig(
        "L4", size_bytes=64 * MB, associativity=8, latency_cycles=35, shared=True))
    nvm: NVMConfig = field(default_factory=NVMConfig)
    encryption: EncryptionConfig = field(default_factory=EncryptionConfig)
    counter_cache: CounterCacheConfig = field(default_factory=CounterCacheConfig)
    kernel: KernelConfig = field(default_factory=KernelConfig)
    coherence: str = "mesi"
    # Functional mode stores and encrypts real bytes; timing mode tracks
    # only metadata and is much faster for large sweeps.
    functional: bool = True

    def __post_init__(self) -> None:
        block_sizes = {self.l1.block_size, self.l2.block_size,
                       self.l3.block_size, self.l4.block_size}
        _require(len(block_sizes) == 1, "all cache levels must share one block size")
        _require(self.kernel.page_size % self.block_size == 0,
                 "page size must be a multiple of the block size")

    @property
    def block_size(self) -> int:
        return self.l1.block_size

    @property
    def blocks_per_page(self) -> int:
        return self.kernel.page_size // self.block_size

    @property
    def num_pages(self) -> int:
        return self.nvm.capacity_bytes // self.kernel.page_size

    @property
    def nvm_read_cycles(self) -> int:
        return self.cpu.ns_to_cycles(self.nvm.read_latency_ns)

    @property
    def nvm_write_cycles(self) -> int:
        return self.cpu.ns_to_cycles(self.nvm.write_latency_ns)

    def cache_levels(self) -> List[CacheConfig]:
        """Cache configs ordered from closest to the core outward."""
        return [self.l1, self.l2, self.l3, self.l4]

    def with_counter_cache_size(self, size_bytes: int) -> "SystemConfig":
        """A copy of this config with a different counter-cache capacity.

        Used by the Figure 12 sensitivity sweep.
        """
        return replace(self, counter_cache=replace(self.counter_cache,
                                                   size_bytes=size_bytes))

    def with_zeroing(self, strategy: str) -> "SystemConfig":
        """A copy of this config with a different kernel zeroing strategy."""
        return replace(self, kernel=replace(self.kernel, zeroing_strategy=strategy))

    def describe(self) -> str:
        """Render the configuration as a Table-1-style text block."""
        rows = [
            ("CPU", f"{self.cpu.num_cores} cores x86-64-like, "
                    f"{self.cpu.clock_ghz:g} GHz clock"),
            ("L1 Cache", _cache_row(self.l1)),
            ("L2 Cache", _cache_row(self.l2)),
            ("L3 Cache", _cache_row(self.l3)),
            ("L4 Cache", _cache_row(self.l4)),
            ("Coherency Protocol", self.coherence.upper()),
            ("Capacity", f"{self.nvm.capacity_bytes // GB} GB"),
            ("# Channels", f"{self.nvm.num_channels} channels"),
            ("Channel bandwidth", f"{self.nvm.channel_bandwidth_gbps:g} GB/s"),
            ("Read Latency", f"{self.nvm.read_latency_ns:g} ns"),
            ("Write Latency", f"{self.nvm.write_latency_ns:g} ns"),
            ("Counter Cache", f"{self.counter_cache.latency_cycles} cycles, "
                              f"{self.counter_cache.size_bytes // MB} MB size, "
                              f"{self.counter_cache.associativity}-way, "
                              f"{self.counter_cache.block_size} B block size"),
            ("Page size", f"{self.kernel.page_size // KB} KB"),
        ]
        width = max(len(name) for name, _ in rows)
        return "\n".join(f"{name.ljust(width)}  {value}" for name, value in rows)


def _cache_row(cache: CacheConfig) -> str:
    if cache.size_bytes >= MB:
        size = f"{cache.size_bytes // MB} MB"
    else:
        size = f"{cache.size_bytes // KB} KB"
    return (f"{cache.latency_cycles} cycles, {size} size, "
            f"{cache.associativity}-way, {cache.replacement.upper()}, "
            f"{cache.block_size} B block size")


#: NVM technology presets (section 2.1 names PCM, STT-RAM and Memristor
#: as the DRAM-replacement candidates). Latencies/energies are
#: representative literature values; endurance per section 1.
NVM_TECHNOLOGIES: Dict[str, NVMConfig] = {
    # Phase-Change Memory: the paper's primary target (Table 1 values).
    "pcm": NVMConfig(read_latency_ns=75.0, write_latency_ns=150.0,
                     read_energy_pj=2000.0, write_energy_pj=16000.0,
                     endurance_writes=10_000_000),
    # Spin-Transfer Torque MRAM: fast, near-DRAM, high endurance.
    "stt-ram": NVMConfig(read_latency_ns=30.0, write_latency_ns=50.0,
                         read_energy_pj=1500.0, write_energy_pj=5000.0,
                         endurance_writes=1_000_000_000_000),
    # Memristor/ReRAM-class: dense but slow, costly writes.
    "memristor": NVMConfig(read_latency_ns=100.0, write_latency_ns=300.0,
                           read_energy_pj=2500.0, write_energy_pj=25000.0,
                           endurance_writes=100_000_000),
}


def config_digest(config: SystemConfig) -> str:
    """Stable content hash of a configuration.

    The digest is a SHA-256 over the canonical JSON form of the config
    (the same representation :mod:`repro.serialization` persists), so it
    is identical across processes and interpreter runs — unlike
    ``hash()``, which is salted per process. The experiment result cache
    keys on it.
    """
    import hashlib
    import json

    from .serialization import config_to_dict  # repro: suppress REPRO203 -- digest wrapper
    payload = json.dumps(config_to_dict(config), sort_keys=True,
                         separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def default_config(**overrides: object) -> SystemConfig:
    """The paper's Table 1 configuration, optionally with field overrides."""
    return replace(SystemConfig(), **overrides) if overrides else SystemConfig()


def fast_config(**overrides: object) -> SystemConfig:
    """A scaled-down configuration for tests and quick benchmark runs.

    Shrinks caches and memory so simulations finish in seconds while
    preserving every structural ratio that matters (4 cache levels, 64 B
    blocks, 4 KB pages, 64 minors + 1 major per counter block).
    """
    base = SystemConfig(
        cpu=CPUConfig(num_cores=2),
        l1=CacheConfig("L1", size_bytes=16 * KB, associativity=4, latency_cycles=2),
        l2=CacheConfig("L2", size_bytes=64 * KB, associativity=4, latency_cycles=8),
        l3=CacheConfig("L3", size_bytes=256 * KB, associativity=8,
                       latency_cycles=25, shared=True),
        l4=CacheConfig("L4", size_bytes=1 * MB, associativity=8,
                       latency_cycles=35, shared=True),
        nvm=NVMConfig(capacity_bytes=64 * MB),
        counter_cache=CounterCacheConfig(size_bytes=64 * KB),
    )
    return replace(base, **overrides) if overrides else base


def bench_config(**overrides: object) -> SystemConfig:
    """Configuration for the benchmark harness.

    Like :func:`fast_config` (scaled caches and memory so workloads
    create realistic eviction pressure at tractable sizes) but with
    more cores for multi-programmed runs, tighter shared caches (so
    the scaled benchmark footprints generate eviction traffic the way
    SPEC footprints exceed an 64 MB L4), and timing-only memory — the
    benchmarks measure transaction counts and latencies, not payload
    bytes.
    """
    base = replace(
        fast_config(),
        cpu=CPUConfig(num_cores=4),
        l3=CacheConfig("L3", size_bytes=128 * KB, associativity=8,
                       latency_cycles=25, shared=True),
        l4=CacheConfig("L4", size_bytes=512 * KB, associativity=8,
                       latency_cycles=35, shared=True),
        functional=False,
    )
    return replace(base, **overrides) if overrides else base
