"""Bus-snooping probe: the section 2.2 / 4.1 attack instrument.

Attach a :class:`BusSnooper` to a memory controller and it records
every payload that crosses the processor<->memory bus. The paper's
argument for processor-side counter-mode encryption is precisely that
this tap only ever observes ciphertext; memory-side (secure-DIMM)
encryption leaves the bus carrying plaintext.
"""

from __future__ import annotations

from typing import List, Optional, Tuple


class BusSnooper:
    """Records (kind, address, payload) for every bus transaction."""

    def __init__(self, max_records: int = 100_000) -> None:
        self.max_records = max_records
        self.records: List[Tuple[str, int, Optional[bytes]]] = []
        self.dropped = 0

    def observe(self, kind: str, address: int,
                payload: Optional[bytes]) -> None:
        if len(self.records) >= self.max_records:
            self.dropped += 1
            return
        self.records.append((kind, address,
                             bytes(payload) if payload is not None else None))

    def search(self, needle: bytes) -> List[Tuple[str, int]]:
        """All transactions whose payload contains ``needle``."""
        hits = []
        for kind, address, payload in self.records:
            if payload is not None and needle in payload:
                hits.append((kind, address))
        return hits

    def __len__(self) -> int:
        return len(self.records)
