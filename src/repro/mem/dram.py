"""DRAM device model: the comparison substrate for Table 2 / Figure 4.

DRAM differs from the NVM model in the three ways that matter to the
paper's argument: writes are symmetric and cheap, there is no endurance
limit, and the device is volatile — a power cycle clears it, which is
why DRAM does not suffer the data-remanence vulnerability but also
cannot provide persistent memory.
"""

from __future__ import annotations

from ..config import DRAMConfig
from .device import MemoryDevice


class DRAMDevice(MemoryDevice):
    """Volatile DRAM with symmetric read/write latency and refresh power."""

    def __init__(self, config: DRAMConfig, block_size: int = 64, *,
                 functional: bool = True) -> None:
        super().__init__(
            config.capacity_bytes, block_size,
            read_latency_ns=config.read_latency_ns,
            write_latency_ns=config.write_latency_ns,
            read_energy_pj=config.read_energy_pj,
            write_energy_pj=config.write_energy_pj,
            functional=functional,
        )
        self.config = config

    def refresh_energy_pj(self, duration_ns: float) -> float:
        """Background refresh energy over a time window."""
        return self.config.refresh_power_mw * 1e-3 * duration_ns  # mW * ns = pJ

    def power_cycle(self) -> None:
        """Volatility: all stored lines are lost on power-off."""
        self._lines.clear()
