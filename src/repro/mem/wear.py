"""Start-Gap wear levelling (Qureshi et al., MICRO 2009).

Start-Gap uniformly spreads writes over a region of memory lines using
only two registers. A region of ``n`` logical lines maps onto ``n + 1``
physical slots; one slot is always the empty *gap*. Every
``gap_move_interval`` writes the line just above the gap is copied into
the gap and the gap pointer moves down one slot; when the gap reaches
slot 0 it wraps back to the top (copying slot ``n`` into slot 0) and the
*start* register advances, so over time every logical line visits every
physical slot.

Mapping (the published formulation):

    pa = (logical + start) mod n
    if pa >= gap: pa += 1

with ``start`` in ``[0, n)`` and ``gap`` in ``[0, n]``. The correctness
invariant — the logical view of the data never changes across gap moves —
is exercised by a hypothesis property test.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..errors import AddressError


class StartGapWearLeveler:
    """Remaps logical line indices to physical slot indices.

    Parameters
    ----------
    num_lines:
        Logical lines in the region (the physical region holds one more).
    gap_move_interval:
        Writes between gap movements (the paper's psi, typically 100).
    move_hook:
        Optional callback ``(src_physical, dst_physical)`` invoked when
        the gap moves, so the owner can copy the slot's contents.
    """

    def __init__(self, num_lines: int, gap_move_interval: int = 100,
                 move_hook: Optional[Callable[[int, int], None]] = None) -> None:
        if num_lines < 1:
            raise AddressError("start-gap region needs at least one line")
        if gap_move_interval < 1:
            raise AddressError("gap move interval must be positive")
        self.num_lines = num_lines
        self.gap_move_interval = gap_move_interval
        self.move_hook = move_hook
        self.start = 0
        self.gap = num_lines          # the spare top slot starts empty
        self.writes_since_move = 0
        self.total_gap_moves = 0

    @property
    def num_physical_slots(self) -> int:
        return self.num_lines + 1

    def translate(self, logical: int) -> int:
        """Map a logical line index to its current physical slot."""
        if logical < 0 or logical >= self.num_lines:
            raise AddressError(f"logical line {logical} out of region of "
                               f"{self.num_lines}")
        physical = (logical + self.start) % self.num_lines
        if physical >= self.gap:
            physical += 1
        return physical

    def record_write(self, logical: int = 0) -> None:
        """Account one write; move the gap when the interval elapses."""
        self.writes_since_move += 1
        if self.writes_since_move >= self.gap_move_interval:
            self.writes_since_move = 0
            self._move_gap()

    def _move_gap(self) -> None:
        self.total_gap_moves += 1
        if self.gap == 0:
            # Wrap: the gap jumps from slot 0 back to the top slot. The
            # data currently in the top slot moves into slot 0, and the
            # start register advances one line.
            if self.move_hook is not None:
                self.move_hook(self.num_lines, 0)
            self.gap = self.num_lines
            self.start = (self.start + 1) % self.num_lines
            return
        if self.move_hook is not None:
            self.move_hook(self.gap - 1, self.gap)
        self.gap -= 1


class RegionedStartGap:
    """Start-Gap applied per fixed-size region (the deployable form).

    One global gap over terabytes rotates far too slowly to matter;
    practical designs partition memory into regions of a few hundred
    lines, each with its own start/gap registers and one spare line.
    Physical layout: region ``r`` occupies slots
    ``[r*(lines+1), (r+1)*(lines+1))``.
    """

    def __init__(self, total_logical_lines: int, lines_per_region: int = 256,
                 gap_move_interval: int = 100,
                 move_hook: Optional[Callable[[int, int], None]] = None) -> None:
        if total_logical_lines < 1:
            raise AddressError("need at least one logical line")
        if lines_per_region < 1:
            raise AddressError("region size must be positive")
        self.total_logical_lines = total_logical_lines
        self.lines_per_region = lines_per_region
        self.gap_move_interval = gap_move_interval
        self.move_hook = move_hook
        self.num_regions = \
            (total_logical_lines + lines_per_region - 1) // lines_per_region
        self._levelers: dict = {}

    @property
    def num_physical_slots(self) -> int:
        return self.num_regions * (self.lines_per_region + 1)

    def _leveler(self, region: int) -> StartGapWearLeveler:
        leveler = self._levelers.get(region)
        if leveler is None:
            lines = min(self.lines_per_region,
                        self.total_logical_lines
                        - region * self.lines_per_region)
            base = region * (self.lines_per_region + 1)
            hook = None
            if self.move_hook is not None:
                outer = self.move_hook

                def hook(src: int, dst: int, _base=base) -> None:
                    outer(_base + src, _base + dst)

            leveler = StartGapWearLeveler(lines, self.gap_move_interval,
                                          move_hook=hook)
            self._levelers[region] = leveler
        return leveler

    def translate(self, logical: int) -> int:
        if logical < 0 or logical >= self.total_logical_lines:
            raise AddressError(f"logical line {logical} out of range")
        region, local = divmod(logical, self.lines_per_region)
        return (region * (self.lines_per_region + 1)
                + self._leveler(region).translate(local))

    def record_write(self, logical: int) -> None:
        region = logical // self.lines_per_region
        self._leveler(region).record_write()

    @property
    def total_gap_moves(self) -> int:
        return sum(l.total_gap_moves for l in self._levelers.values())
