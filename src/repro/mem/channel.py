"""Memory-channel bandwidth and queueing model.

The paper's system has 2 channels of 12.8 GB/s. Each channel is a
shared bus modelled as a busy-time server: one 64 B block transaction
occupies the bus for ``block_size / bandwidth`` (5 ns at 12.8 GB/s),
and the device's cell access latency (75 ns reads / 150 ns writes) is
*pipelined* behind the bus — NVM DIMMs have many banks, so throughput
is bus-limited while each transaction still observes its full device
latency. A request's completion time is therefore::

    finish = max(now, channel_free) + transfer + device_latency

and the channel frees after the transfer slot, not after the cell
access. Blocks stripe across channels by block index.
"""

from __future__ import annotations

from typing import List

from ..errors import ConfigError


class ChannelModel:
    """Per-channel bus busy-time accounting in nanoseconds."""

    def __init__(self, num_channels: int, bandwidth_gbps: float,
                 block_size: int = 64) -> None:
        if num_channels < 1:
            raise ConfigError("need at least one channel")
        if bandwidth_gbps <= 0:
            raise ConfigError("channel bandwidth must be positive")
        self.num_channels = num_channels
        self.bandwidth_gbps = bandwidth_gbps
        self.block_size = block_size
        # GB/s == bytes/ns, so transfer time in ns is bytes / (GB/s).
        self.transfer_ns = block_size / bandwidth_gbps
        # Controllers have finite transaction queues; a request never
        # waits longer than a full queue's worth of bus slots. This also
        # bounds the artificial skew between per-core clocks in the
        # transaction-level model.
        self.max_queue_slots = 64
        self._free_at_ns: List[float] = [0.0] * num_channels
        self.busy_ns = 0.0
        self.queued_requests = 0
        self.total_requests = 0
        self.total_queue_delay_ns = 0.0

    def channel_for(self, address: int) -> int:
        """Stripe blocks round-robin across channels by block index."""
        return (address // self.block_size) % self.num_channels

    def request(self, address: int, now_ns: float, service_ns: float, *,
                is_read: bool = True) -> float:
        """Schedule one block transaction; returns its completion time.

        ``service_ns`` is the device access latency, overlapped across
        banks; only the bus transfer slot serialises with other traffic
        on the channel.
        """
        channel = self.channel_for(address)
        cap_ns = self.max_queue_slots * self.transfer_ns
        queue_delay = min(max(0.0, self._free_at_ns[channel] - now_ns), cap_ns)
        start = now_ns + queue_delay
        if queue_delay > 0:
            self.queued_requests += 1
            self.total_queue_delay_ns += queue_delay
        # Back-pressure: the queue never holds more than max_queue_slots
        # of backlog relative to the most recent requester's clock.
        self._free_at_ns[channel] = min(
            max(self._free_at_ns[channel], start) + self.transfer_ns,
            now_ns + cap_ns)
        self.busy_ns += self.transfer_ns
        self.total_requests += 1
        return start + self.transfer_ns + service_ns

    def utilization(self, elapsed_ns: float) -> float:
        """Aggregate channel (bus) utilization over an elapsed window."""
        if elapsed_ns <= 0:
            return 0.0
        return self.busy_ns / (elapsed_ns * self.num_channels)

    def reset(self) -> None:
        self._free_at_ns = [0.0] * self.num_channels
        self.busy_ns = 0.0
        self.queued_requests = 0
        self.total_requests = 0
        self.total_queue_delay_ns = 0.0
