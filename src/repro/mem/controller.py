"""Plain (unencrypted) memory controller.

Routes block reads and writes to the backing device through the channel
model and accounts latency. The secure controllers in :mod:`repro.core`
wrap this one: they add counter handling, pad generation and the shred
datapath on top of the raw read/write transactions provided here.

The controller optionally applies Start-Gap wear levelling over the
device's lines before the channel/device access.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..clock import SimClock, resolve_time
from ..config import NVMConfig
from ..errors import AddressError
from .channel import ChannelModel
from .device import MemoryDevice
from .stats import MemoryStats
from .wear import StartGapWearLeveler


@dataclass
class RawAccess:
    """Outcome of one device transaction."""

    data: Optional[bytes]
    latency_ns: float
    finish_ns: float


class MemoryController:
    """Bottom-level controller: channels + device + optional wear levelling."""

    def __init__(self, device: MemoryDevice, *,
                 num_channels: int = 2, channel_bandwidth_gbps: float = 12.8,
                 wear_leveler: Optional[StartGapWearLeveler] = None,
                 metrics=None, metrics_prefix: str = "mem.channel",
                 clock: Optional[SimClock] = None) -> None:
        self.device = device
        self.clock = clock if clock is not None else SimClock()
        self.block_size = device.block_size
        self.channels = ChannelModel(num_channels, channel_bandwidth_gbps,
                                     device.block_size)
        self.wear_leveler = wear_leveler
        self.stats = MemoryStats(registry=metrics, prefix=metrics_prefix)
        # Bus probes (section 2.2 attack model): every payload crossing
        # the processor<->memory bus is shown to attached snoopers. With
        # processor-side counter-mode encryption they only ever see
        # ciphertext; a memory-side (secure-DIMM) design would expose
        # plaintext here.
        self.snoopers: list = []

    @classmethod
    def for_nvm(cls, device: MemoryDevice, config: NVMConfig, *,
                wear_leveler: Optional[StartGapWearLeveler] = None,
                metrics=None,
                clock: Optional[SimClock] = None) -> "MemoryController":
        return cls(device,
                   num_channels=config.num_channels,
                   channel_bandwidth_gbps=config.channel_bandwidth_gbps,
                   wear_leveler=wear_leveler,
                   metrics=metrics,
                   clock=clock)

    # -- address remapping -------------------------------------------------

    def _physical_address(self, address: int) -> int:
        """Apply wear levelling remap (identity when disabled)."""
        if self.wear_leveler is None:
            return address
        logical_line = address // self.block_size
        physical_line = self.wear_leveler.translate(logical_line)
        return physical_line * self.block_size

    # -- transactions --------------------------------------------------------

    def read_block(self, address: int, at: Optional[float] = None, *,
                   now_ns: Optional[float] = None) -> RawAccess:
        """Read one block; returns data plus end-to-end latency."""
        now = resolve_time(self.clock, at, now_ns)
        physical = self._physical_address(address)
        data = self.device.read_block(physical)
        for snooper in self.snoopers:
            snooper.observe("read", address, data)
        finish = self.channels.request(address, now,
                                       self.device.read_latency_ns,
                                       is_read=True)
        latency = finish - now
        self.stats.record_read(self.block_size, latency,
                               self.device.read_energy_pj)
        return RawAccess(data=data, latency_ns=latency, finish_ns=finish)

    def write_block(self, address: int, data: Optional[bytes] = None,
                    at: Optional[float] = None, *,
                    now_ns: Optional[float] = None) -> RawAccess:
        """Write one block; returns the write's end-to-end latency."""
        now = resolve_time(self.clock, at, now_ns)
        physical = self._physical_address(address)
        for snooper in self.snoopers:
            snooper.observe("write", address, data)
        bits = self.device.write_block(physical, data)
        if self.wear_leveler is not None:
            self.wear_leveler.record_write(address // self.block_size)
        finish = self.channels.request(address, now,
                                       self.device.write_latency_ns,
                                       is_read=False)
        latency = finish - now
        self.stats.record_write(self.block_size, bits, latency,
                                self.device.write_energy_pj)
        return RawAccess(data=None, latency_ns=latency, finish_ns=finish)

    # -- grouped transactions ------------------------------------------------

    def read_blocks(self, addresses: Sequence[int],
                    at: Optional[float] = None, *,
                    now_ns: Optional[float] = None) -> List[RawAccess]:
        """Issue a group of reads, in order, sharing one issue time.

        The channel model is stateful (each request advances its
        channel's busy horizon), so the group is scheduled in sequence
        exactly as the equivalent scalar calls would be — grouping
        saves per-call time resolution, not simulated ordering.
        """
        now = resolve_time(self.clock, at, now_ns)
        read = self.read_block
        return [read(address, now) for address in addresses]

    def write_blocks(self, writes: Sequence[Tuple[int, Optional[bytes]]],
                     at: Optional[float] = None, *,
                     now_ns: Optional[float] = None) -> List[RawAccess]:
        """Issue a group of (address, data) writes in order at one time."""
        now = resolve_time(self.clock, at, now_ns)
        write = self.write_block
        return [write(address, data, now) for address, data in writes]

    def check_block_address(self, address: int) -> None:
        if address % self.block_size != 0:
            raise AddressError(f"address {address:#x} not block aligned")
        self.device.check_block_address(address)
