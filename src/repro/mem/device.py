"""Base class shared by the NVM and DRAM device models.

A device stores 64 B lines addressed by block-aligned physical byte
addresses. In *functional* mode it keeps the actual bytes (so encryption
and shredding can be verified end to end); in *timing* mode it keeps no
data and only accounts latency, energy and wear, which makes large
parameter sweeps fast.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from ..errors import AddressError, AlignmentError
from .stats import MemoryStats

if TYPE_CHECKING:
    # Type-only: devices take an injected registry and must not import
    # the telemetry layer at runtime (layering rule REPRO202).
    from ..obs import MetricsRegistry


class MemoryDevice:
    """A flat array of cache-block-sized lines with timing and energy."""

    def __init__(self, capacity_bytes: int, block_size: int = 64, *,
                 read_latency_ns: float, write_latency_ns: float,
                 read_energy_pj: float, write_energy_pj: float,
                 functional: bool = True,
                 metrics: Optional[MetricsRegistry] = None,
                 metrics_prefix: str = "mem.device") -> None:
        if capacity_bytes % block_size != 0:
            raise AddressError("capacity must be a whole number of blocks")
        self.capacity_bytes = capacity_bytes
        self.block_size = block_size
        self.read_latency_ns = read_latency_ns
        self.write_latency_ns = write_latency_ns
        self.read_energy_pj = read_energy_pj
        self.write_energy_pj = write_energy_pj
        self.functional = functional
        self.stats = MemoryStats(registry=metrics, prefix=metrics_prefix)
        # Sparse line store: absent lines read as zero-filled.
        self._lines: Dict[int, bytes] = {}
        self._zero_line = bytes(block_size)

    # -- address helpers --------------------------------------------------

    def check_block_address(self, address: int) -> None:
        if address < 0 or address + self.block_size > self.capacity_bytes:
            raise AddressError(f"address {address:#x} outside device of "
                               f"{self.capacity_bytes} bytes")
        if address % self.block_size != 0:
            raise AlignmentError(f"address {address:#x} is not {self.block_size}-byte aligned")

    # -- data path ---------------------------------------------------------

    def read_block(self, address: int) -> bytes:
        """Read one line; updates timing/energy stats."""
        self.check_block_address(address)
        self.stats.record_read(self.block_size, self.read_latency_ns,
                               self.read_energy_pj)
        if not self.functional:
            return self._zero_line
        return self._lines.get(address, self._zero_line)

    def write_block(self, address: int, data: Optional[bytes]) -> int:
        """Write one line, returning the number of cell bits programmed.

        Subclasses refine the bit-flip count (DCW / Flip-N-Write); the
        base device assumes every bit is programmed.
        """
        self.check_block_address(address)
        bits = self._store(address, data)
        self.stats.record_write(self.block_size, bits, self.write_latency_ns,
                                self.write_energy_pj)
        return bits

    def _store(self, address: int, data: Optional[bytes]) -> int:
        """Store the payload and return programmed-bit count."""
        if self.functional:
            if data is None:
                raise AddressError("functional device requires write data")
            if len(data) != self.block_size:
                raise AddressError(f"write payload must be {self.block_size} bytes")
            if data == self._zero_line:
                self._lines.pop(address, None)
            else:
                self._lines[address] = bytes(data)
        return self.block_size * 8

    def peek(self, address: int) -> bytes:
        """Inspect a line without touching stats (attacker's memory scan)."""
        self.check_block_address(address)
        return self._lines.get(address, self._zero_line)

    def poke(self, address: int, data: bytes) -> None:
        """Overwrite a line without stats (models physical tampering)."""
        self.check_block_address(address)
        if len(data) != self.block_size:
            raise AddressError(f"payload must be {self.block_size} bytes")
        self._lines[address] = bytes(data)

    @property
    def num_blocks(self) -> int:
        return self.capacity_bytes // self.block_size
