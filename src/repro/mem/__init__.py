"""Memory substrate: NVM/DRAM device models, channels, wear levelling.

This package models everything below the secure controller:

* :mod:`repro.mem.nvm` — a PCM-like device with asymmetric read/write
  latency, per-access energy, per-line wear counters with an endurance
  limit, Data-Comparison-Write and Flip-N-Write bit-flip reduction.
* :mod:`repro.mem.dram` — a DRAM device used for comparison points.
* :mod:`repro.mem.wear` — Start-Gap wear levelling (Qureshi et al.).
* :mod:`repro.mem.channel` — channel bandwidth / busy-time model.
* :mod:`repro.mem.controller` — the plain (unencrypted) memory
  controller the secure controllers build on.
"""

from .stats import MemoryStats
from .device import MemoryDevice
from .nvm import NVMDevice
from .dram import DRAMDevice
from .wear import StartGapWearLeveler, RegionedStartGap
from .channel import ChannelModel
from .controller import MemoryController
from .snoop import BusSnooper

__all__ = [
    "BusSnooper",
    "ChannelModel",
    "DRAMDevice",
    "MemoryController",
    "MemoryDevice",
    "MemoryStats",
    "NVMDevice",
    "RegionedStartGap",
    "StartGapWearLeveler",
]
