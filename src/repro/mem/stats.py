"""Counters collected by memory devices and controllers.

Since the telemetry layer (:mod:`repro.obs`) landed, the numbers live
in :class:`~repro.obs.MetricsRegistry` counters and
:class:`MemoryStats` is a *view* over them: construct it bound to a
registry and prefix (``MemoryStats(registry=reg, prefix="mem.nvm")``)
and every ``record_read``/``record_write`` feeds instruments named
``mem.nvm.reads``, ``mem.nvm.writes`` and so on, which exporters then
dump alongside the rest of the stack. Constructed bare, it owns a
private registry and behaves exactly like the original dataclass —
same attributes, properties and ``snapshot()``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

if TYPE_CHECKING:
    # Type-only at module level: mem must not import the telemetry
    # layer at runtime (layering rule REPRO202). The bare-construction
    # default in __init__ imports it lazily instead.
    from ..obs import MetricsRegistry

#: (field, unit) of each counter a MemoryStats view exposes.
_COUNTER_FIELDS = (
    ("reads", "ops"),
    ("writes", "ops"),
    ("bytes_read", "bytes"),
    ("bytes_written", "bytes"),
    ("bits_written", "bits"),
    ("read_energy_pj", "pJ"),
    ("write_energy_pj", "pJ"),
    ("total_read_latency_ns", "ns"),
    ("total_write_latency_ns", "ns"),
)


class MemoryStats:
    """Access counters for one device or controller.

    ``reads``/``writes`` count block transactions; ``bits_written`` counts
    actual cell programs after Data-Comparison-Write / Flip-N-Write, which
    is what endurance and write energy scale with.
    """

    def __init__(self, *, registry: Optional[MetricsRegistry] = None,
                 prefix: str = "mem.device") -> None:
        if registry is None:
            from ..obs import MetricsRegistry as _Registry
            registry = _Registry()
        self.registry = registry
        self.prefix = prefix
        self._counters = {
            name: self.registry.counter(
                f"{prefix}.{name}",  # repro: suppress REPRO402 -- prefix is caller-checked
                unit=unit)
            for name, unit in _COUNTER_FIELDS
        }

    # -- recording ----------------------------------------------------------------

    def record_read(self, nbytes: int, latency_ns: float, energy_pj: float) -> None:
        counters = self._counters
        counters["reads"].inc()
        counters["bytes_read"].inc(nbytes)
        counters["total_read_latency_ns"].inc(latency_ns)
        counters["read_energy_pj"].inc(energy_pj)

    def record_write(self, nbytes: int, bits_flipped: int, latency_ns: float,
                     energy_pj: float) -> None:
        counters = self._counters
        counters["writes"].inc()
        counters["bytes_written"].inc(nbytes)
        counters["bits_written"].inc(bits_flipped)
        counters["total_write_latency_ns"].inc(latency_ns)
        counters["write_energy_pj"].inc(energy_pj)

    # -- the dataclass-compatible view ----------------------------------------------

    def __getattr__(self, name: str):
        counters = self.__dict__.get("_counters")
        if counters is not None and name in counters:
            return counters[name].value
        raise AttributeError(f"{type(self).__name__!r} object has no "
                             f"attribute {name!r}")

    @property
    def total_energy_pj(self) -> float:
        return self.read_energy_pj + self.write_energy_pj

    @property
    def avg_read_latency_ns(self) -> float:
        return self.total_read_latency_ns / self.reads if self.reads else 0.0

    @property
    def avg_write_latency_ns(self) -> float:
        return self.total_write_latency_ns / self.writes if self.writes else 0.0

    def snapshot(self) -> Dict[str, float]:
        """A plain-dict copy, convenient for result tables."""
        return {
            "reads": self.reads,
            "writes": self.writes,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "bits_written": self.bits_written,
            "read_energy_pj": self.read_energy_pj,
            "write_energy_pj": self.write_energy_pj,
            "avg_read_latency_ns": self.avg_read_latency_ns,
            "avg_write_latency_ns": self.avg_write_latency_ns,
        }

    # -- aggregation --------------------------------------------------------------

    def merge(self, other: "MemoryStats") -> None:
        """Fold another view's totals into this one (multi-channel /
        multi-device aggregation for exporters; adds, never replaces,
        so repeated snapshots don't double-count)."""
        for name, _unit in _COUNTER_FIELDS:
            self._counters[name].inc(getattr(other, name))

    def reset(self) -> None:
        """Zero every counter in place, keeping the registry binding
        (replacing the object would orphan the bound instruments)."""
        for counter in self._counters.values():
            counter.reset()
