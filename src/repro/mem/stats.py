"""Counters collected by memory devices and controllers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class MemoryStats:
    """Access counters for one device or controller.

    ``reads``/``writes`` count block transactions; ``bits_written`` counts
    actual cell programs after Data-Comparison-Write / Flip-N-Write, which
    is what endurance and write energy scale with.
    """

    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    bits_written: int = 0
    read_energy_pj: float = 0.0
    write_energy_pj: float = 0.0
    total_read_latency_ns: float = 0.0
    total_write_latency_ns: float = 0.0

    def record_read(self, nbytes: int, latency_ns: float, energy_pj: float) -> None:
        self.reads += 1
        self.bytes_read += nbytes
        self.total_read_latency_ns += latency_ns
        self.read_energy_pj += energy_pj

    def record_write(self, nbytes: int, bits_flipped: int, latency_ns: float,
                     energy_pj: float) -> None:
        self.writes += 1
        self.bytes_written += nbytes
        self.bits_written += bits_flipped
        self.total_write_latency_ns += latency_ns
        self.write_energy_pj += energy_pj

    @property
    def total_energy_pj(self) -> float:
        return self.read_energy_pj + self.write_energy_pj

    @property
    def avg_read_latency_ns(self) -> float:
        return self.total_read_latency_ns / self.reads if self.reads else 0.0

    @property
    def avg_write_latency_ns(self) -> float:
        return self.total_write_latency_ns / self.writes if self.writes else 0.0

    def snapshot(self) -> Dict[str, float]:
        """A plain-dict copy, convenient for result tables."""
        return {
            "reads": self.reads,
            "writes": self.writes,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "bits_written": self.bits_written,
            "read_energy_pj": self.read_energy_pj,
            "write_energy_pj": self.write_energy_pj,
            "avg_read_latency_ns": self.avg_read_latency_ns,
            "avg_write_latency_ns": self.avg_write_latency_ns,
        }

    def reset(self) -> None:
        self.__init__()  # type: ignore[misc]
