"""PCM-like non-volatile memory device model.

Adds to the base device the NVM-specific behaviours the paper leans on:

* **Data-Comparison-Write (DCW)** — only cells whose value changes are
  programmed (Zhou et al. [45]); the device reads the old line and counts
  differing bits.
* **Flip-N-Write (FNW)** — per word, write the flipped pattern when that
  programs fewer cells (Cho and Lee [17]); one extra flip bit per word.
* **Per-line wear counters** with an endurance limit; the device can
  either raise on exhaustion or just record it, and reports wear
  statistics used by the endurance benchmark.
* **Data remanence**: being non-volatile, ``power_cycle()`` keeps all
  data, which is exactly the vulnerability that motivates encryption
  (tests scan the device after a power cycle).

Note Young et al. [43] observe DCW/FNW lose effectiveness under
encryption because diffusion flips ~50 % of bits regardless; the model
reproduces that, which is why eliminating whole writes (Silent Shredder)
matters more than bit-flip tricks.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..config import NVMConfig
from ..errors import EnduranceExceededError
from .device import MemoryDevice

#: Words per 64 B line for the Flip-N-Write granularity (32-bit words).
FNW_WORD_BITS = 32


class NVMDevice(MemoryDevice):
    """Phase-change-memory-like device with wear and write optimisation."""

    def __init__(self, config: NVMConfig, block_size: int = 64, *,
                 functional: bool = True, write_scheme: str = "fnw",
                 fail_on_endurance: bool = False,
                 metrics=None, metrics_prefix: str = "mem.nvm") -> None:
        super().__init__(
            config.capacity_bytes, block_size,
            read_latency_ns=config.read_latency_ns,
            write_latency_ns=config.write_latency_ns,
            read_energy_pj=config.read_energy_pj,
            write_energy_pj=config.write_energy_pj,
            functional=functional,
            metrics=metrics, metrics_prefix=metrics_prefix,
        )
        if write_scheme not in ("naive", "dcw", "fnw"):
            raise ValueError(f"unknown write scheme {write_scheme!r}")
        self.config = config
        self.write_scheme = write_scheme
        self.fail_on_endurance = fail_on_endurance
        self.endurance_writes = config.endurance_writes
        self.wear: Dict[int, int] = {}
        self.worn_out_lines = 0
        # Flip bits for FNW (one per 32-bit word), functional mode only.
        self._flip_state: Dict[int, int] = {}

    # -- write path --------------------------------------------------------

    def _store(self, address: int, data: Optional[bytes]) -> int:
        wear = self.wear.get(address, 0) + 1
        self.wear[address] = wear
        if wear == self.endurance_writes + 1:
            self.worn_out_lines += 1
            if self.fail_on_endurance:
                raise EnduranceExceededError(
                    f"line {address:#x} exceeded endurance of "
                    f"{self.endurance_writes} writes")

        if not self.functional or data is None:
            # Timing mode: assume the encrypted-diffusion average of half
            # the bits changing under DCW/FNW, all bits for naive.
            total_bits = self.block_size * 8
            if self.write_scheme == "naive":
                return total_bits
            estimated = total_bits // 2
            if self.write_scheme == "fnw":
                # FNW bounds flips to half the word plus the flip bit.
                estimated = min(estimated, (total_bits // 2)
                                + self.block_size * 8 // FNW_WORD_BITS)
            return estimated

        old = self._lines.get(address, self._zero_line)
        bits = self._count_programmed_bits(address, old, data)
        super()._store(address, data)
        return bits

    def _count_programmed_bits(self, address: int, old: bytes, new: bytes) -> int:
        total_bits = self.block_size * 8
        if self.write_scheme == "naive":
            return total_bits

        diff = int.from_bytes(old, "little") ^ int.from_bytes(new, "little")
        if self.write_scheme == "dcw":
            return bin(diff).count("1")

        # Flip-N-Write over 32-bit words: for each word choose between
        # writing the new value or its complement, whichever flips fewer
        # stored cells given the word's current flip bit.
        flips = 0
        flip_state = self._flip_state.get(address, 0)
        new_flip_state = 0
        words = total_bits // FNW_WORD_BITS
        mask = (1 << FNW_WORD_BITS) - 1
        old_int = int.from_bytes(old, "little")
        new_int = int.from_bytes(new, "little")
        for w in range(words):
            shift = w * FNW_WORD_BITS
            old_word = (old_int >> shift) & mask
            # What is physically stored is old_word XOR'd per its flip bit.
            stored = old_word ^ (mask if (flip_state >> w) & 1 else 0)
            new_word = (new_int >> shift) & mask
            direct = bin(stored ^ new_word).count("1")
            flipped = bin(stored ^ (new_word ^ mask)).count("1")
            if flipped + 1 < direct:
                flips += flipped + 1  # +1 for programming the flip bit
                new_flip_state |= 1 << w
            else:
                flips += direct
        self._flip_state[address] = new_flip_state
        return flips

    # -- wear reporting ------------------------------------------------------

    def max_wear(self) -> int:
        return max(self.wear.values()) if self.wear else 0

    def total_line_writes(self) -> int:
        return sum(self.wear.values())

    def wear_spread(self) -> float:
        """max/mean wear over written lines (1.0 is perfectly even)."""
        if not self.wear:
            return 1.0
        mean = self.total_line_writes() / len(self.wear)
        return self.max_wear() / mean if mean else 1.0

    def lifetime_fraction_used(self) -> float:
        """Fraction of the worst line's endurance budget consumed."""
        return self.max_wear() / self.endurance_writes

    # -- non-volatility ------------------------------------------------------

    def power_cycle(self) -> None:
        """Power the device off and on: NVM retains every line (remanence)."""
        # Data, wear and flip bits all persist; nothing to do. The method
        # exists so tests and examples can make the remanence explicit and
        # so DRAMDevice can override it with data loss.
        return None
