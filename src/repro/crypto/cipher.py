"""Block-cipher interface and the fast keyed diffusion cipher.

Counter-mode encryption only requires a keyed pseudorandom permutation of
the IV to generate pads. For large timing simulations we substitute real
AES with :class:`XorShiftCipher`, a splitmix64-based keyed permutation.
It is emphatically **not** cryptographically secure, but it has the two
properties the simulation relies on:

* determinism under a key (same IV -> same pad), and
* diffusion (flipping one IV bit scrambles the whole pad),

which is exactly what the Silent Shredder correctness argument uses
(decrypting with a changed IV yields an uncorrelated block). DESIGN.md
documents this substitution; security tests run against real AES.
"""

from __future__ import annotations

import abc
import struct

from ..errors import CipherError

_MASK64 = (1 << 64) - 1


class BlockCipher(abc.ABC):
    """A 16-byte-block keyed permutation used for pad generation."""

    block_size: int = 16
    name: str = "abstract"

    @abc.abstractmethod
    def encrypt_block(self, plaintext: bytes) -> bytes:
        """Encrypt exactly one 16-byte block."""

    @abc.abstractmethod
    def decrypt_block(self, ciphertext: bytes) -> bytes:
        """Decrypt exactly one 16-byte block."""


def _splitmix64(value: int) -> int:
    """One splitmix64 finalization round: a strong 64-bit mixer."""
    value = (value + 0x9E3779B97F4A7C15) & _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return value ^ (value >> 31)


class XorShiftCipher(BlockCipher):
    """Fast keyed diffusion permutation over 16-byte blocks.

    Pads are produced as two mixed 64-bit lanes seeded by the key and the
    IV halves, with cross-lane mixing so every IV bit affects every output
    bit. ``decrypt_block`` is unsupported (counter mode never inverts the
    cipher: both directions XOR with a freshly generated pad).
    """

    name = "xorshift"

    def __init__(self, key: bytes) -> None:
        if len(key) != 16:
            raise CipherError(f"XorShiftCipher needs a 16-byte key, got {len(key)}")
        k0, k1 = struct.unpack("<QQ", key)
        self._k0 = _splitmix64(k0)
        self._k1 = _splitmix64(k1 ^ 0xA5A5A5A5A5A5A5A5)

    def encrypt_block(self, plaintext: bytes) -> bytes:
        if len(plaintext) != 16:
            raise CipherError("block must be exactly 16 bytes")
        v0, v1 = struct.unpack("<QQ", plaintext)
        a = _splitmix64(v0 ^ self._k0)
        b = _splitmix64(v1 ^ self._k1)
        # Cross-lane mixing: each output lane depends on both input lanes.
        out0 = _splitmix64(a ^ (b >> 1) ^ self._k1)
        out1 = _splitmix64(b ^ (a << 1 & _MASK64) ^ self._k0)
        return struct.pack("<QQ", out0, out1)

    def decrypt_block(self, ciphertext: bytes) -> bytes:
        raise CipherError("XorShiftCipher is pad-generation-only (counter mode)")


class NullCipher(BlockCipher):
    """Identity cipher: pads are the IV itself. Only for plumbing tests."""

    name = "null"

    def __init__(self, key: bytes = b"\x00" * 16) -> None:
        if len(key) != 16:
            raise CipherError("NullCipher still requires a 16-byte key")

    def encrypt_block(self, plaintext: bytes) -> bytes:
        if len(plaintext) != 16:
            raise CipherError("block must be exactly 16 bytes")
        return plaintext

    def decrypt_block(self, ciphertext: bytes) -> bytes:
        if len(ciphertext) != 16:
            raise CipherError("block must be exactly 16 bytes")
        return ciphertext


def make_cipher(name: str, key: bytes) -> BlockCipher:
    """Instantiate a cipher by configuration name.

    ``"aes"`` -> real AES-128, ``"xorshift"`` -> fast diffusion cipher,
    ``"null"`` -> identity (tests only).
    """
    if name == "aes":
        from .aes import AES128
        return AES128(key)
    if name == "xorshift":
        return XorShiftCipher(key)
    if name == "null":
        return NullCipher(key)
    raise CipherError(f"unknown cipher {name!r}")
