"""AES-128 implemented from scratch (FIPS-197).

Built for the functional-correctness side of the reproduction: the secure
NVMM controller uses this cipher to generate counter-mode pads when the
simulation runs in ``cipher="aes"`` mode, so the security tests (shredded
data is unintelligible, pads never repeat, known vectors match) exercise a
real cipher rather than a stand-in.

The implementation favours clarity over raw speed: the S-box is derived
from the GF(2^8) multiplicative inverse plus the affine transform, the key
schedule follows the spec directly, and rounds operate on a 16-byte state
list. Encryption of one block costs a few microseconds in CPython, which
is fine for tests; large timing sweeps use the fast cipher instead.
"""

from __future__ import annotations

from typing import List, Sequence

from ..errors import CipherError
from .cipher import BlockCipher


def _xtime(a: int) -> int:
    """Multiply by x (i.e. 2) in GF(2^8) with the AES polynomial 0x11b."""
    a <<= 1
    if a & 0x100:
        a ^= 0x11B
    return a & 0xFF


def _gf_mul(a: int, b: int) -> int:
    """Multiply two elements of GF(2^8) (AES field)."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a = _xtime(a)
        b >>= 1
    return result


def _build_sbox() -> List[int]:
    """Derive the AES S-box: multiplicative inverse then affine transform."""
    # Build inverse table via exponentiation tables over generator 3.
    exp = [0] * 512
    log = [0] * 256
    value = 1
    for i in range(255):
        exp[i] = value
        log[value] = i
        value = _gf_mul(value, 3)
    for i in range(255, 512):
        exp[i] = exp[i - 255]

    sbox = [0] * 256
    for byte in range(256):
        inv = 0 if byte == 0 else exp[255 - log[byte]]
        # Affine transform: b ^ rot1 ^ rot2 ^ rot3 ^ rot4 ^ 0x63
        x = inv
        transformed = x
        for _ in range(4):
            x = ((x << 1) | (x >> 7)) & 0xFF
            transformed ^= x
        sbox[byte] = transformed ^ 0x63
    return sbox


SBOX: List[int] = _build_sbox()
INV_SBOX: List[int] = [0] * 256
for _i, _v in enumerate(SBOX):
    INV_SBOX[_v] = _i

RCON: List[int] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36]


class AES128(BlockCipher):
    """AES with a 128-bit key and 16-byte blocks."""

    block_size = 16
    name = "aes"

    def __init__(self, key: bytes) -> None:
        if len(key) != 16:
            raise CipherError(f"AES-128 needs a 16-byte key, got {len(key)}")
        self._round_keys = self._expand_key(key)

    @staticmethod
    def _expand_key(key: bytes) -> List[List[int]]:
        """Produce the 11 round keys as flat 16-byte lists."""
        words: List[List[int]] = [list(key[i:i + 4]) for i in range(0, 16, 4)]
        for i in range(4, 44):
            temp = list(words[i - 1])
            if i % 4 == 0:
                temp = temp[1:] + temp[:1]                 # RotWord
                temp = [SBOX[b] for b in temp]             # SubWord
                temp[0] ^= RCON[i // 4 - 1]
            words.append([words[i - 4][j] ^ temp[j] for j in range(4)])
        round_keys = []
        for round_index in range(11):
            flat: List[int] = []
            for word in words[4 * round_index: 4 * round_index + 4]:
                flat.extend(word)
            round_keys.append(flat)
        return round_keys

    # -- round transformations (state is a flat column-major 16-list) ----

    @staticmethod
    def _sub_bytes(state: List[int]) -> None:
        for i in range(16):
            state[i] = SBOX[state[i]]

    @staticmethod
    def _inv_sub_bytes(state: List[int]) -> None:
        for i in range(16):
            state[i] = INV_SBOX[state[i]]

    @staticmethod
    def _shift_rows(state: List[int]) -> List[int]:
        # state[col*4 + row]; row r shifts left by r.
        s = state
        return [
            s[0], s[5], s[10], s[15],
            s[4], s[9], s[14], s[3],
            s[8], s[13], s[2], s[7],
            s[12], s[1], s[6], s[11],
        ]

    @staticmethod
    def _inv_shift_rows(state: List[int]) -> List[int]:
        s = state
        return [
            s[0], s[13], s[10], s[7],
            s[4], s[1], s[14], s[11],
            s[8], s[5], s[2], s[15],
            s[12], s[9], s[6], s[3],
        ]

    @staticmethod
    def _mix_columns(state: List[int]) -> None:
        for col in range(4):
            base = col * 4
            a0, a1, a2, a3 = state[base:base + 4]
            state[base + 0] = _gf_mul(a0, 2) ^ _gf_mul(a1, 3) ^ a2 ^ a3
            state[base + 1] = a0 ^ _gf_mul(a1, 2) ^ _gf_mul(a2, 3) ^ a3
            state[base + 2] = a0 ^ a1 ^ _gf_mul(a2, 2) ^ _gf_mul(a3, 3)
            state[base + 3] = _gf_mul(a0, 3) ^ a1 ^ a2 ^ _gf_mul(a3, 2)

    @staticmethod
    def _inv_mix_columns(state: List[int]) -> None:
        for col in range(4):
            base = col * 4
            a0, a1, a2, a3 = state[base:base + 4]
            state[base + 0] = (_gf_mul(a0, 14) ^ _gf_mul(a1, 11)
                               ^ _gf_mul(a2, 13) ^ _gf_mul(a3, 9))
            state[base + 1] = (_gf_mul(a0, 9) ^ _gf_mul(a1, 14)
                               ^ _gf_mul(a2, 11) ^ _gf_mul(a3, 13))
            state[base + 2] = (_gf_mul(a0, 13) ^ _gf_mul(a1, 9)
                               ^ _gf_mul(a2, 14) ^ _gf_mul(a3, 11))
            state[base + 3] = (_gf_mul(a0, 11) ^ _gf_mul(a1, 13)
                               ^ _gf_mul(a2, 9) ^ _gf_mul(a3, 14))

    @staticmethod
    def _add_round_key(state: List[int], round_key: Sequence[int]) -> None:
        for i in range(16):
            state[i] ^= round_key[i]

    # -- public API -------------------------------------------------------

    def encrypt_block(self, plaintext: bytes) -> bytes:
        if len(plaintext) != 16:
            raise CipherError("AES block must be exactly 16 bytes")
        state = list(plaintext)
        self._add_round_key(state, self._round_keys[0])
        for round_index in range(1, 10):
            self._sub_bytes(state)
            state = self._shift_rows(state)
            self._mix_columns(state)
            self._add_round_key(state, self._round_keys[round_index])
        self._sub_bytes(state)
        state = self._shift_rows(state)
        self._add_round_key(state, self._round_keys[10])
        return bytes(state)

    def decrypt_block(self, ciphertext: bytes) -> bytes:
        if len(ciphertext) != 16:
            raise CipherError("AES block must be exactly 16 bytes")
        state = list(ciphertext)
        self._add_round_key(state, self._round_keys[10])
        for round_index in range(9, 0, -1):
            state = self._inv_shift_rows(state)
            self._inv_sub_bytes(state)
            self._add_round_key(state, self._round_keys[round_index])
            self._inv_mix_columns(state)
        state = self._inv_shift_rows(state)
        self._inv_sub_bytes(state)
        self._add_round_key(state, self._round_keys[0])
        return bytes(state)
