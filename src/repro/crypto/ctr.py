"""Counter-mode encryption engine for 64-byte cache blocks.

Implements the datapath of Figure 2: an IV (page id, page offset, major
counter, minor counter, padding) is encrypted under the memory key to
produce a one-time pad, and the cache block is XORed with the pad. One
64 B cache block needs four 16 B cipher outputs; the engine derives them
by stamping a 2-bit segment index into the IV padding, so the four pad
segments are distinct cipher inputs under the same logical IV.
"""

from __future__ import annotations

import struct
from typing import Iterable

from ..errors import CipherError
from .cipher import BlockCipher


def xor_bytes(a: bytes, b: bytes) -> bytes:
    """XOR two equal-length byte strings."""
    if len(a) != len(b):
        raise CipherError(f"xor operands differ in length: {len(a)} vs {len(b)}")
    return bytes(x ^ y for x, y in zip(a, b))


class CounterModeEngine:
    """Generates one-time pads and encrypts/decrypts cache blocks.

    Parameters
    ----------
    cipher:
        The keyed block cipher used to turn IVs into pad segments.
    block_size:
        The cache-block size in bytes (64 in the paper's system).
    """

    def __init__(self, cipher: BlockCipher, block_size: int = 64) -> None:
        if block_size % cipher.block_size != 0:
            raise CipherError("cache block size must be a multiple of the "
                              "cipher block size")
        self.cipher = cipher
        self.block_size = block_size
        self.segments = block_size // cipher.block_size
        self.pads_generated = 0

    def pad_for_iv(self, iv_bytes: bytes) -> bytes:
        """Produce a full cache-block pad for one logical IV.

        The last IV byte is reserved as padding in the IV layout
        (:mod:`repro.core.iv` always leaves it zero), so stamping the
        segment index there keeps the four cipher inputs unique without
        colliding with any other IV.
        """
        if len(iv_bytes) != self.cipher.block_size:
            raise CipherError("IV must be one cipher block long")
        if iv_bytes[-1] != 0:
            raise CipherError("IV padding byte must be zero (reserved for "
                              "pad segment indices)")
        pad_parts = []
        prefix = iv_bytes[:-1]
        for segment in range(self.segments):
            pad_parts.append(self.cipher.encrypt_block(prefix + bytes([segment])))
        self.pads_generated += 1
        return b"".join(pad_parts)

    def pads_for_ivs(self, ivs: Iterable[bytes]) -> list:
        """Produce pads for a group of logical IVs in order.

        The grouped entry point the batch engine drives: semantically
        identical to mapping :meth:`pad_for_iv` over ``ivs`` (including
        the ``pads_generated`` accounting), but a single call through
        the cipher seam per epoch group.
        """
        return [self.pad_for_iv(iv) for iv in ivs]

    def encrypt(self, plaintext: bytes, iv_bytes: bytes) -> bytes:
        """Encrypt one cache block: ciphertext = plaintext XOR pad(IV)."""
        if len(plaintext) != self.block_size:
            raise CipherError(f"expected a {self.block_size}-byte block")
        return xor_bytes(plaintext, self.pad_for_iv(iv_bytes))

    def decrypt(self, ciphertext: bytes, iv_bytes: bytes) -> bytes:
        """Decrypt one cache block (XOR with the same pad)."""
        return self.encrypt(ciphertext, iv_bytes)

    def decrypt_many(self, blocks: Iterable[bytes],
                     ivs: Iterable[bytes]) -> list:
        """Decrypt a group of cache blocks under their paired IVs."""
        pairs = list(zip(blocks, ivs))
        pads = self.pads_for_ivs(iv for _, iv in pairs)
        return [xor_bytes(block, pad)
                for (block, _), pad in zip(pairs, pads)]
