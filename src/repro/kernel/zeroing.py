"""Page-zeroing strategies (sections 2.3, 8 and Table 2).

Five ways to clear a physical page before reuse:

* ``temporal`` — a CPU store loop through the cache hierarchy (``movq``):
  pollutes caches, and write-allocate fetches each block from memory
  first; the zeros reach NVM only when dirty lines are later evicted.
* ``nontemporal`` — a CPU store loop bypassing the caches (``movntq``):
  no pollution, but 64 full NVM writes per page plus an ``sfence`` wait.
* ``dma`` — a DMA engine near the memory controller issues the writes
  (Jiang et al. [21]): the CPU only pays setup, but NVM writes remain.
* ``rowclone`` — in-memory bulk zeroing from a reserved zero row
  (Seshadri et al. [34]): no memory-bus traffic, but cells are still
  programmed; DRAM-specific — under memory encryption the in-array
  zeros would decrypt to garbage, so it requires ``encryption.enabled
  = False``.
* ``shred`` — Silent Shredder's command: one MMIO write, cache-line
  invalidations, and a counter-cache update. No data writes at all.

Every strategy reports both the *latency* it adds to the page fault and
the *CPU-busy* portion of it, plus how many NVM data writes it caused —
the three axes Table 2 compares.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..config import ZEROING_STRATEGIES
from ..errors import ConfigError, SimulationError


@dataclass
class ZeroingResult:
    """Cost of zeroing one page."""

    strategy: str
    latency_ns: float = 0.0       # added to the fault's critical path
    cpu_busy_ns: float = 0.0      # of which the CPU was occupied
    memory_writes: int = 0        # NVM data-block writes caused
    memory_reads: int = 0         # NVM data-block reads caused (RFO)
    cache_blocks_polluted: int = 0


@dataclass
class ZeroingStats:
    """Aggregate over all zeroing operations performed by one engine."""

    pages_zeroed: int = 0
    latency_ns: float = 0.0
    cpu_busy_ns: float = 0.0
    memory_writes: int = 0
    memory_reads: int = 0
    cache_blocks_polluted: int = 0

    def add(self, result: ZeroingResult) -> None:
        self.pages_zeroed += 1
        self.latency_ns += result.latency_ns
        self.cpu_busy_ns += result.cpu_busy_ns
        self.memory_writes += result.memory_writes
        self.memory_reads += result.memory_reads
        self.cache_blocks_polluted += result.cache_blocks_polluted


#: Cycles a DMA zeroing engine needs for descriptor setup + completion IRQ.
DMA_SETUP_CYCLES = 200
#: Latency of one RowClone row initialisation (ns); a 4 KB page is one row.
ROWCLONE_ROW_NS = 100.0


class ZeroingEngine:
    """Executes a configured zeroing strategy against the machine."""

    def __init__(self, machine, strategy: Optional[str] = None) -> None:
        self.machine = machine
        self.config = machine.config
        self.strategy = strategy or self.config.kernel.zeroing_strategy
        if self.strategy not in ZEROING_STRATEGIES:
            raise ConfigError(f"unknown zeroing strategy {self.strategy!r}")
        if self.strategy == "shred" and machine.shred_register is None:
            raise ConfigError("shred strategy requires a Silent Shredder "
                              "machine (shred register present)")
        if self.strategy == "rowclone" and self.config.encryption.enabled:
            raise ConfigError("RowClone writes plaintext zeros in-array and "
                              "is incompatible with encrypted memory "
                              "(DRAM-specific technique)")
        self.stats = ZeroingStats()
        self._cycle_ns = self.config.cpu.cycle_ns
        self._issue_ns = self.config.kernel.store_issue_cycles * self._cycle_ns
        self._zero_block = bytes(self.config.block_size)

    # -- entry point ---------------------------------------------------------

    def zero_page(self, ppn: int, *, core: int = 0,
                  now_ns: float = 0.0) -> ZeroingResult:
        """Clear physical page ``ppn`` using the configured strategy."""
        handler = getattr(self, f"_zero_{self.strategy}")
        result = handler(ppn, core, now_ns)
        self.stats.add(result)
        return result

    # -- strategies --------------------------------------------------------------

    def _page_blocks(self, ppn: int):
        page_size = self.config.kernel.page_size
        block_size = self.config.block_size
        base = ppn * page_size
        return range(base, base + page_size, block_size)

    def _zero_none(self, ppn: int, core: int, now_ns: float) -> ZeroingResult:
        """No shredding at all — insecure; the no-zeroing reference point
        of Figure 5."""
        return ZeroingResult(strategy="none")

    def _zero_temporal(self, ppn: int, core: int, now_ns: float) -> ZeroingResult:
        """Store loop through the caches; zeros linger dirty in the
        hierarchy and reach NVM on eviction."""
        machine = self.machine
        result = ZeroingResult(strategy="temporal")
        writes_before = machine.controller.stats.data_writes
        reads_before = machine.controller.stats.data_reads
        elapsed = 0.0
        for address in self._page_blocks(ppn):
            access = machine.hierarchy.access(
                core, address, True,
                self._zero_block if machine.functional else None,
                now_ns + elapsed)
            elapsed += access.latency_cycles * self._cycle_ns + self._issue_ns
            result.cache_blocks_polluted += 1
        result.latency_ns = elapsed
        result.cpu_busy_ns = elapsed
        result.memory_writes = machine.controller.stats.data_writes - writes_before
        result.memory_reads = machine.controller.stats.data_reads - reads_before
        return result

    def _zero_nontemporal(self, ppn: int, core: int, now_ns: float) -> ZeroingResult:
        """movntq loop: invalidate cached copies, write zeros straight to
        NVM, sfence until the last write is posted."""
        machine = self.machine
        result = ZeroingResult(strategy="nontemporal")
        page_size = self.config.kernel.page_size
        machine.hierarchy.invalidate_page(ppn * page_size, page_size,
                                          writeback=True, now_ns=now_ns)
        issue_time = 0.0
        last_finish = now_ns
        for address in self._page_blocks(ppn):
            issue_time += self._issue_ns
            store = machine.controller.store_block(
                address, self._zero_block if machine.functional else None,
                now_ns + issue_time)
            last_finish = max(last_finish, now_ns + issue_time + store.latency_ns)
            result.memory_writes += 1
        # sfence: the fault cannot complete until all zeros are durable.
        result.latency_ns = last_finish - now_ns
        result.cpu_busy_ns = issue_time
        return result

    def _zero_dma(self, ppn: int, core: int, now_ns: float) -> ZeroingResult:
        """DMA bulk-zeroing engine: CPU pays setup, engine does the writes."""
        machine = self.machine
        result = ZeroingResult(strategy="dma")
        page_size = self.config.kernel.page_size
        machine.hierarchy.invalidate_page(ppn * page_size, page_size,
                                          writeback=True, now_ns=now_ns)
        setup_ns = DMA_SETUP_CYCLES * self._cycle_ns
        last_finish = now_ns + setup_ns
        for address in self._page_blocks(ppn):
            store = machine.controller.store_block(
                address, self._zero_block if machine.functional else None,
                now_ns + setup_ns)
            last_finish = max(last_finish, now_ns + setup_ns + store.latency_ns)
            result.memory_writes += 1
        result.latency_ns = last_finish - now_ns
        result.cpu_busy_ns = setup_ns
        return result

    def _zero_rowclone(self, ppn: int, core: int, now_ns: float) -> ZeroingResult:
        """In-memory zeroing: cells are programmed but the bus stays idle."""
        machine = self.machine
        result = ZeroingResult(strategy="rowclone")
        page_size = self.config.kernel.page_size
        machine.hierarchy.invalidate_page(ppn * page_size, page_size,
                                          writeback=True, now_ns=now_ns)
        device = machine.controller.device
        for address in self._page_blocks(ppn):
            device.write_block(address, self._zero_block if machine.functional
                               else None)
            result.memory_writes += 1
        setup_ns = DMA_SETUP_CYCLES * self._cycle_ns
        result.latency_ns = setup_ns + ROWCLONE_ROW_NS
        result.cpu_busy_ns = setup_ns
        return result

    def _zero_shred(self, ppn: int, core: int, now_ns: float) -> ZeroingResult:
        """Silent Shredder: one MMIO write; no data-block writes at all."""
        machine = self.machine
        if machine.shred_register is None:
            raise SimulationError("machine has no shred register")
        writes_before = machine.controller.stats.data_writes
        outcome = machine.shred_register.write(
            ppn * self.config.kernel.page_size, kernel_mode=True, now_ns=now_ns)
        result = ZeroingResult(strategy="shred",
                               latency_ns=outcome.latency_ns,
                               cpu_busy_ns=outcome.latency_ns)
        result.memory_writes = machine.controller.stats.data_writes - writes_before
        return result
