"""Operating-system model: allocation, page faults, zeroing, hypervisor.

Models the kernel behaviour the paper's evaluation depends on
(sections 2.3 and 5):

* a physical page allocator with an optional FreeBSD-style pre-zeroed
  pool,
* Linux-style anonymous memory: fresh reads map to the shared Zero
  Page; the first write takes a copy-on-write fault that allocates and
  *zeroes* a physical page before mapping it,
* five page-zeroing strategies — temporal stores, non-temporal stores,
  DMA-engine bulk zeroing, RowClone-style in-memory zeroing, and the
  Silent Shredder shred command,
* syscalls for user-level bulk zero-initialisation (section 7.2), and
* a hypervisor with per-VM memory grants and ballooning, reproducing
  the duplicate-shredding structure of Figure 1.
"""

from .phys_alloc import PhysicalPageAllocator
from .page_table import PageTable, PageTableEntry
from .process import Process
from .zeroing import ZeroingEngine, ZeroingResult, ZeroingStats
from .kernel import Kernel, KernelStats
from .hypervisor import Hypervisor, VirtualMachine
from .pmem import PersistentHeap, PersistentRegion
from .enclave import Enclave, EnclaveManager

__all__ = [
    "Enclave",
    "EnclaveManager",
    "Hypervisor",
    "Kernel",
    "KernelStats",
    "PageTable",
    "PersistentHeap",
    "PersistentRegion",
    "PageTableEntry",
    "PhysicalPageAllocator",
    "Process",
    "VirtualMachine",
    "ZeroingEngine",
    "ZeroingResult",
    "ZeroingStats",
]
