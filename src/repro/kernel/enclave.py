"""Hardware-managed enclave shredding (section 4.1).

Silent Shredder normally trusts the OS to issue shred commands: "an
untrusted OS can maliciously avoid page zeroing in order to cause data
leak between processes. If the OS is not trusted, then processes must
run in secure enclaves... the hardware can notify Silent Shredder
directly when a page from an enclave is going to be deallocated."

:class:`EnclaveManager` models that adaptation: enclave page ownership
is tracked in *hardware* (next to the memory controller), and enclave
teardown drives the shred datapath directly — the kernel cannot skip
it, because the manager refuses to release a page back to the OS pool
before its counters are shredded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from ..errors import ProtectionError, SimulationError


@dataclass
class Enclave:
    """One hardware-tracked protection domain."""

    enclave_id: int
    pages: List[int] = field(default_factory=list)
    torn_down: bool = False


class EnclaveManager:
    """Hardware-side registry of enclave pages with teardown shredding."""

    def __init__(self, machine) -> None:
        if machine.shred_register is None:
            raise SimulationError("enclaves require a Silent Shredder "
                                  "controller (hardware shred datapath)")
        self.machine = machine
        self.page_size = machine.config.kernel.page_size
        self._enclaves: Dict[int, Enclave] = {}
        self._owned_pages: Set[int] = set()
        self._next_id = 1
        self.teardown_shreds = 0

    def create_enclave(self, pages: List[int]) -> Enclave:
        """Register pages as enclave-owned (EPC-style)."""
        for page in pages:
            if page in self._owned_pages:
                raise ProtectionError(f"page {page} already enclave-owned")
        enclave = Enclave(enclave_id=self._next_id, pages=list(pages))
        self._next_id += 1
        self._enclaves[enclave.enclave_id] = enclave
        self._owned_pages.update(pages)
        return enclave

    def is_enclave_page(self, page: int) -> bool:
        return page in self._owned_pages

    def guard_reuse(self, page: int) -> None:
        """The allocator-side check: handing an enclave page to anyone
        else without teardown is a protection violation."""
        if page in self._owned_pages:
            raise ProtectionError(
                f"page {page} belongs to a live enclave; teardown first")

    def teardown(self, enclave_id: int) -> int:
        """Destroy an enclave: *hardware* shreds every page, then the
        pages become reusable. Returns the number of pages shredded."""
        enclave = self._enclaves.get(enclave_id)
        if enclave is None or enclave.torn_down:
            raise SimulationError(f"no live enclave {enclave_id}")
        for page in enclave.pages:
            self.machine.shred_register.write(page * self.page_size,
                                              kernel_mode=True)
            self._owned_pages.discard(page)
            self.teardown_shreds += 1
        enclave.torn_down = True
        return len(enclave.pages)
