"""Physical page allocator.

A free list over physical page numbers with two behaviours that matter
to the reproduction:

* **LIFO reuse**: freed pages are handed out again promptly, so pages
  regularly move between processes — exactly the situation that forces
  shredding before reuse.
* An optional **pre-zeroed pool** (FreeBSD-style, section 2.3): pages
  zeroed ahead of time during idle periods can be mapped without
  fault-time zeroing; the pool drains under load.

The allocator also supports donating and reclaiming page ranges, which
the hypervisor uses to grant host pages to guest kernels (ballooning).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, List, Set

from ..errors import AddressError, OutOfMemoryError


class PhysicalPageAllocator:
    """Free-list allocator over physical page numbers."""

    def __init__(self, pages: Iterable[int]) -> None:
        self._free: Deque[int] = deque(sorted(pages))
        self._all: Set[int] = set(self._free)
        self._prezeroed: Deque[int] = deque()
        self.allocations = 0
        self.frees = 0
        self.prezeroed_hits = 0

    @classmethod
    def over_range(cls, first_page: int, num_pages: int) -> "PhysicalPageAllocator":
        if num_pages < 1:
            raise AddressError("allocator needs at least one page")
        return cls(range(first_page, first_page + num_pages))

    # -- core allocation -----------------------------------------------------

    @property
    def free_pages(self) -> int:
        return len(self._free) + len(self._prezeroed)

    @property
    def total_pages(self) -> int:
        return len(self._all)

    def owns(self, page: int) -> bool:
        return page in self._all

    def allocate(self) -> int:
        """Take one page; pre-zeroed pages are preferred.

        Returns the page number. Use :meth:`was_prezeroed` semantics via
        :meth:`allocate_with_state` when the caller must know whether
        zeroing is still required.
        """
        page, _ = self.allocate_with_state()
        return page

    def allocate_with_state(self) -> "tuple[int, bool]":
        """Take one page, returning ``(page, already_zeroed)``."""
        if self._prezeroed:
            self.allocations += 1
            self.prezeroed_hits += 1
            return self._prezeroed.popleft(), True
        if not self._free:
            raise OutOfMemoryError("physical memory exhausted")
        self.allocations += 1
        return self._free.popleft(), False

    def allocate_contiguous(self, count: int) -> List[int]:
        """Take ``count`` physically contiguous pages (huge-page backing).

        Scans the free list for the lowest contiguous run; raises
        :class:`OutOfMemoryError` when fragmentation defeats the request.
        Pre-zeroed pages are not considered (huge pages are zeroed as a
        unit by the caller).
        """
        if count == 1:
            page, _ = self.allocate_with_state()
            return [page]
        free_sorted = sorted(self._free)
        run_start = 0
        for i in range(1, len(free_sorted) + 1):
            if i == len(free_sorted) or free_sorted[i] != free_sorted[i - 1] + 1:
                if i - run_start >= count:
                    chosen = free_sorted[run_start:run_start + count]
                    chosen_set = set(chosen)
                    self._free = type(self._free)(
                        p for p in self._free if p not in chosen_set)
                    self.allocations += count
                    return chosen
                run_start = i
        raise OutOfMemoryError(
            f"no contiguous run of {count} pages available")

    def free(self, page: int) -> None:
        """Return a page to the free list (its old contents intact —
        shredding happens at reuse time, not free time)."""
        if page not in self._all:
            raise AddressError(f"page {page} does not belong to this allocator")
        self._free.appendleft(page)   # LIFO: encourage prompt reuse
        self.frees += 1

    # -- pre-zeroed pool --------------------------------------------------------

    def stock_prezeroed(self, count: int) -> List[int]:
        """Move up to ``count`` free pages into the pre-zeroed pool.

        The caller is responsible for actually zeroing them (the kernel
        does this during idle time); the returned list says which pages
        to zero.
        """
        moved = []
        while count > 0 and self._free:
            page = self._free.popleft()
            self._prezeroed.append(page)
            moved.append(page)
            count -= 1
        return moved

    # -- donation / reclaim (hypervisor support) ------------------------------------

    def donate(self, pages: Iterable[int]) -> None:
        """Add foreign pages to this allocator (hypervisor grant)."""
        for page in pages:
            if page in self._all:
                raise AddressError(f"page {page} already owned")
            self._all.add(page)
            self._free.append(page)

    def claim(self, page: int) -> None:
        """Remove one specific free page from circulation (persistent
        region re-attachment after reboot)."""
        if page not in self._all:
            raise AddressError(f"page {page} does not belong to this allocator")
        if page in self._prezeroed:
            self._prezeroed.remove(page)
        elif page in self._free:
            self._free.remove(page)
        else:
            raise AddressError(f"page {page} is not free")
        self.allocations += 1

    def transfer_out(self, page: int) -> None:
        """Relinquish ownership of an already-allocated page (grant)."""
        if page not in self._all:
            raise AddressError(f"page {page} does not belong to this allocator")
        self._all.discard(page)

    def reclaim(self, count: int) -> List[int]:
        """Remove up to ``count`` free pages entirely (balloon deflate)."""
        taken: List[int] = []
        while count > 0 and (self._free or self._prezeroed):
            source = self._free if self._free else self._prezeroed
            page = source.pop()
            self._all.discard(page)
            taken.append(page)
            count -= 1
        return taken
