"""Hypervisor model: inter-VM isolation and memory ballooning.

Reproduces the structure of Figure 1: a VM requests host physical
pages (step 1), the hypervisor zeroes them before granting to prevent
inter-VM data leak (step 2), a process inside the VM requests memory
(step 3), and the guest kernel zeroes pages again before mapping them
(step 4) — the *duplicate shredding* that makes the shred command so
valuable in virtualised systems (section 7.2).

Ballooning (VMware-style): under memory pressure the hypervisor
reclaims free pages from one VM and grants them to another; every
reclaimed-then-granted page is shredded again.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..errors import OutOfMemoryError, SimulationError
from .kernel import Kernel
from .phys_alloc import PhysicalPageAllocator
from .zeroing import ZeroingEngine, ZeroingStats


@dataclass
class HypervisorStats:
    grants: int = 0
    pages_granted: int = 0
    pages_reclaimed: int = 0
    balloon_operations: int = 0


class VirtualMachine:
    """One guest: a kernel over pages granted by the hypervisor."""

    def __init__(self, vm_id: int, machine, zero_page_ppn: int) -> None:
        self.vm_id = vm_id
        allocator = PhysicalPageAllocator([])
        self.kernel = Kernel(machine, allocator=allocator)
        self.kernel.zero_page_ppn = zero_page_ppn
        self.granted_pages: List[int] = []

    @property
    def free_pages(self) -> int:
        return self.kernel.allocator.free_pages


class Hypervisor:
    """Manages host physical memory across virtual machines."""

    def __init__(self, machine, *, zeroing: Optional[ZeroingEngine] = None) -> None:
        self.machine = machine
        self.config = machine.config
        self.page_size = self.config.kernel.page_size
        # Page 0 is the host-wide shared Zero Page.
        self.host_allocator = PhysicalPageAllocator.over_range(
            1, self.config.num_pages - 1)
        self.zeroing = zeroing if zeroing is not None else ZeroingEngine(machine)
        self.vms: Dict[int, VirtualMachine] = {}
        self._next_vm_id = 1
        self.stats = HypervisorStats()

    # -- VM lifecycle ------------------------------------------------------------

    def create_vm(self, *, initial_pages: int = 0) -> VirtualMachine:
        vm = VirtualMachine(self._next_vm_id, self.machine, zero_page_ppn=0)
        self.vms[vm.vm_id] = vm
        self._next_vm_id += 1
        if initial_pages:
            self.grant(vm.vm_id, initial_pages)
        return vm

    def destroy_vm(self, vm_id: int) -> int:
        """Tear down a VM; its pages return to the host pool un-zeroed
        (they will be shredded before the next grant)."""
        vm = self.vms.pop(vm_id, None)
        if vm is None:
            raise SimulationError(f"no such VM {vm_id}")
        for pid in list(vm.kernel.processes):
            vm.kernel.exit_process(pid)
        reclaimed = vm.kernel.allocator.reclaim(vm.kernel.allocator.free_pages)
        for page in reclaimed:
            self.host_allocator.free(page) if self.host_allocator.owns(page) \
                else self.host_allocator.donate([page])
        self.stats.pages_reclaimed += len(reclaimed)
        return len(reclaimed)

    # -- memory grants (Figure 1, steps 1-2) ------------------------------------------

    def grant(self, vm_id: int, num_pages: int) -> List[int]:
        """Zero (shred) host pages and grant them to a VM."""
        vm = self.vms.get(vm_id)
        if vm is None:
            raise SimulationError(f"no such VM {vm_id}")
        if self.host_allocator.free_pages < num_pages:
            raise OutOfMemoryError(
                f"host has {self.host_allocator.free_pages} free pages, "
                f"VM {vm_id} asked for {num_pages}")
        pages = []
        for _ in range(num_pages):
            page, already_zeroed = self.host_allocator.allocate_with_state()
            if not already_zeroed:
                self.zeroing.zero_page(page)
            pages.append(page)
        # Remove from host ownership and donate to the guest allocator.
        for page in pages:
            self.host_allocator.transfer_out(page)
        vm.kernel.allocator.donate(pages)
        vm.granted_pages.extend(pages)
        self.stats.grants += 1
        self.stats.pages_granted += num_pages
        return pages

    # -- ballooning ------------------------------------------------------------------

    def balloon(self, victim_vm_id: int, beneficiary_vm_id: int,
                num_pages: int) -> int:
        """Reclaim free pages from one VM and grant them to another.

        Every moved page is zeroed by the hypervisor before the new VM
        sees it, so frequent ballooning means frequent shredding.
        """
        victim = self.vms.get(victim_vm_id)
        beneficiary = self.vms.get(beneficiary_vm_id)
        if victim is None or beneficiary is None:
            raise SimulationError("both VMs must exist for ballooning")
        reclaimed = victim.kernel.allocator.reclaim(num_pages)
        victim.granted_pages = [p for p in victim.granted_pages
                                if p not in set(reclaimed)]
        for page in reclaimed:
            self.zeroing.zero_page(page)
        beneficiary.kernel.allocator.donate(reclaimed)
        beneficiary.granted_pages.extend(reclaimed)
        self.stats.balloon_operations += 1
        self.stats.pages_reclaimed += len(reclaimed)
        self.stats.pages_granted += len(reclaimed)
        return len(reclaimed)

    @property
    def zeroing_stats(self) -> ZeroingStats:
        return self.zeroing.stats
