"""Per-process page tables.

A flat virtual address space mapped page-by-page onto physical page
numbers. The entry flags capture the Linux anonymous-memory states the
paper describes (section 2.3): a fresh read maps the virtual page to
the shared Zero Page read-only; the first write takes a copy-on-write
fault that installs a private writable page.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

from ..errors import AddressError, PageFaultError


@dataclass
class PageTableEntry:
    """One virtual-to-physical mapping."""

    ppn: int
    writable: bool = True
    zero_page: bool = False      # maps the shared Zero Page (COW source)
    huge: bool = False           # part of a huge-page unit


class PageTable:
    """vpn -> entry mapping for one process (or one guest kernel)."""

    def __init__(self, page_size: int) -> None:
        self.page_size = page_size
        self._entries: Dict[int, PageTableEntry] = {}

    def vpn_of(self, vaddr: int) -> int:
        if vaddr < 0:
            raise AddressError(f"negative virtual address {vaddr:#x}")
        return vaddr // self.page_size

    def map(self, vpn: int, ppn: int, *, writable: bool = True,
            zero_page: bool = False) -> None:
        self._entries[vpn] = PageTableEntry(ppn=ppn, writable=writable,
                                            zero_page=zero_page)

    def unmap(self, vpn: int) -> PageTableEntry:
        entry = self._entries.pop(vpn, None)
        if entry is None:
            raise PageFaultError(f"vpn {vpn} was not mapped")
        return entry

    def lookup(self, vpn: int) -> Optional[PageTableEntry]:
        return self._entries.get(vpn)

    def translate(self, vaddr: int, *, write: bool) -> int:
        """Resolve a virtual address, raising on any fault condition."""
        entry = self._entries.get(self.vpn_of(vaddr))
        if entry is None:
            raise PageFaultError(f"unmapped address {vaddr:#x}")
        if write and not entry.writable:
            raise PageFaultError(f"write to read-only address {vaddr:#x}")
        return entry.ppn * self.page_size + (vaddr % self.page_size)

    def mapped_vpns(self) -> Iterator[Tuple[int, PageTableEntry]]:
        return iter(sorted(self._entries.items()))

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, vpn: int) -> bool:
        return vpn in self._entries
