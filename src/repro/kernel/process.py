"""Process model: a virtual address space plus simple mmap-style regions."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from ..errors import AddressError
from .page_table import PageTable

#: Virtual address where process heaps begin (arbitrary, page aligned).
HEAP_BASE = 0x1000_0000


@dataclass
class Region:
    """One mmap'd virtual region."""

    start: int
    length: int
    huge: bool = False        # backed by huge pages (2 MB units)

    @property
    def end(self) -> int:
        return self.start + self.length


class Process:
    """One process: pid, page table, and a bump-pointer mmap allocator."""

    def __init__(self, pid: int, page_size: int) -> None:
        self.pid = pid
        self.page_size = page_size
        self.page_table = PageTable(page_size)
        self.regions: List[Region] = []
        self._next_va = HEAP_BASE
        self.resident_pages = 0

    def mmap(self, length: int, *, huge: bool = False,
             huge_page_size: int = 0) -> Region:
        """Reserve a new virtual region (no physical backing yet).

        Like anonymous ``mmap``: physical pages arrive lazily through
        page faults on first touch. ``huge`` rounds the region and its
        virtual base up to ``huge_page_size`` so each fault populates a
        whole huge page.
        """
        if length <= 0:
            raise AddressError("mmap length must be positive")
        unit = huge_page_size if huge else self.page_size
        if huge and (unit <= 0 or unit % self.page_size):
            raise AddressError("huge page size must be a multiple of the "
                               "base page size")
        pages = (length + unit - 1) // unit * (unit // self.page_size)
        start = (self._next_va + unit - 1) // unit * unit
        region = Region(start=start, length=pages * self.page_size, huge=huge)
        self._next_va = region.end + self.page_size   # guard gap
        self.regions.append(region)
        return region

    def region_containing(self, vaddr: int) -> Region:
        for region in self.regions:
            if region.start <= vaddr < region.end:
                return region
        raise AddressError(f"address {vaddr:#x} outside any region of "
                           f"pid {self.pid}")

    def vpns_of_region(self, region: Region) -> range:
        return range(region.start // self.page_size,
                     region.end // self.page_size)
