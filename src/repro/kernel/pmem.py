"""Persistent-memory regions (section 2.1).

NVM main memory "may allow future systems to fuse storage and main
memory": applications can make persistent allocations whose page
mapping information the OS keeps durable, so a region can be remapped
across machine reboots (Mnemosyne/Moraru-style building blocks).

:class:`PersistentHeap` implements the kernel half of that contract on
top of this repository's machine model:

* a **directory page** in NVM records the name and physical pages of
  every persistent region (packed binary, rewritten on ``commit``),
* ``commit()`` flushes the cache hierarchy (region contents), persists
  the directory, and flushes the battery-backed counter cache — the
  three durability points the paper's §4.3/§7.1 discussion requires,
* after a power cycle, :meth:`PersistentHeap.attach` re-reads the
  directory, claims the regions' physical pages out of the allocator's
  free list, and hands back readable regions.

The interplay with shredding is the interesting part: *volatile* pages
recycle through shred-on-reuse as usual, while persistent pages are
deliberately exempt until :meth:`destroy_region` shreds them (secure
deletion of persistent data — one shred command instead of a 4 KB
overwrite).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..errors import AddressError, SimulationError

#: Directory layout: magic + u16 region count, then per region a
#: 16-byte name, u16 page count, and u32 physical page numbers.
_MAGIC = b"SSPMDIR1"
_NAME_BYTES = 16


@dataclass
class PersistentRegion:
    """A named, durable allocation."""

    name: str
    pages: List[int]

    @property
    def size_bytes(self) -> int:
        return len(self.pages) * 4096


class PersistentHeap:
    """Named persistent regions with a durable NVM directory."""

    def __init__(self, machine, kernel, *, directory_ppn: Optional[int] = None,
                 _attached: Optional[Dict[str, PersistentRegion]] = None) -> None:
        self.machine = machine
        self.kernel = kernel
        self.page_size = machine.config.kernel.page_size
        self.block_size = machine.block_size
        if directory_ppn is None:
            directory_ppn = kernel.allocator.allocate()
        self.directory_ppn = directory_ppn
        self.regions: Dict[str, PersistentRegion] = _attached or {}

    # -- region lifecycle ---------------------------------------------------

    def create_region(self, name: str, num_pages: int) -> PersistentRegion:
        """Allocate a new zeroed persistent region."""
        if len(name.encode()) > _NAME_BYTES:
            raise AddressError(f"region name {name!r} exceeds "
                               f"{_NAME_BYTES} bytes")
        if name in self.regions:
            raise SimulationError(f"region {name!r} already exists")
        pages = [self.kernel.allocator.allocate() for _ in range(num_pages)]
        for page in pages:
            self.kernel.zeroing.zero_page(page)
        region = PersistentRegion(name=name, pages=pages)
        self.regions[name] = region
        return region

    def destroy_region(self, name: str) -> None:
        """Secure deletion: shred the pages, then recycle them."""
        region = self.regions.pop(name, None)
        if region is None:
            raise SimulationError(f"no region {name!r}")
        for page in region.pages:
            if self.machine.shred_register is not None:
                self.machine.shred_register.write(page * self.page_size,
                                                  kernel_mode=True)
            self.kernel.allocator.free(page)

    # -- data access -----------------------------------------------------------

    def _physical(self, region: PersistentRegion, offset: int) -> int:
        if offset < 0 or offset >= region.size_bytes:
            raise AddressError(f"offset {offset} outside region "
                               f"{region.name!r}")
        page_index, within = divmod(offset, self.page_size)
        return region.pages[page_index] * self.page_size + within

    def write(self, region: PersistentRegion, offset: int,
              payload: bytes) -> None:
        """Store bytes into a region (through the cache hierarchy)."""
        position = 0
        while position < len(payload):
            physical = self._physical(region, offset + position)
            take = min(self.page_size - (offset + position) % self.page_size,
                       len(payload) - position)
            self.machine.write_bytes(0, physical,
                                     payload[position:position + take])
            position += take

    def read(self, region: PersistentRegion, offset: int,
             length: int) -> bytes:
        """Load bytes from a region."""
        out = bytearray()
        position = 0
        while position < length:
            physical = self._physical(region, offset + position)
            take = min(self.page_size - (offset + position) % self.page_size,
                       length - position)
            chunk, _ = self.machine.read_bytes(0, physical, take)
            out.extend(chunk)
            position += take
        return bytes(out)

    # -- durability ---------------------------------------------------------------

    def _pack_directory(self) -> bytes:
        parts = [_MAGIC, struct.pack("<H", len(self.regions))]
        for region in self.regions.values():
            parts.append(region.name.encode().ljust(_NAME_BYTES, b"\x00"))
            parts.append(struct.pack("<H", len(region.pages)))
            parts.extend(struct.pack("<I", page) for page in region.pages)
        blob = b"".join(parts)
        if len(blob) > self.page_size:
            raise SimulationError("persistent directory exceeds one page")
        return blob.ljust(self.page_size, b"\x00")

    def commit(self) -> None:
        """Make all regions durable: flush caches, persist the
        directory, flush the counter cache."""
        self.machine.hierarchy.flush_all()
        blob = self._pack_directory()
        base = self.directory_ppn * self.page_size
        for offset in range(0, self.page_size, self.block_size):
            self.machine.controller.store_block(
                base + offset,
                blob[offset:offset + self.block_size]
                if self.machine.functional else None)
        self.machine.controller.flush_counters()

    @classmethod
    def attach(cls, machine, kernel, directory_ppn: int) -> "PersistentHeap":
        """Reboot path: parse the directory and reclaim region pages."""
        page_size = machine.config.kernel.page_size
        block_size = machine.block_size
        base = directory_ppn * page_size
        blob = bytearray()
        for offset in range(0, page_size, block_size):
            result = machine.controller.fetch_block(base + offset)
            blob.extend(result.data if result.data is not None
                        else bytes(block_size))
        if bytes(blob[:len(_MAGIC)]) != _MAGIC:
            raise SimulationError("no persistent directory found "
                                  "(uncommitted or corrupted)")
        (count,) = struct.unpack_from("<H", blob, len(_MAGIC))
        cursor = len(_MAGIC) + 2
        regions: Dict[str, PersistentRegion] = {}
        for _ in range(count):
            name = bytes(blob[cursor:cursor + _NAME_BYTES]).rstrip(b"\x00").decode()
            cursor += _NAME_BYTES
            (num_pages,) = struct.unpack_from("<H", blob, cursor)
            cursor += 2
            pages = []
            for _ in range(num_pages):
                (page,) = struct.unpack_from("<I", blob, cursor)
                cursor += 4
                pages.append(page)
            regions[name] = PersistentRegion(name=name, pages=pages)
        # Keep the regions' frames and the directory out of circulation.
        kernel.allocator.claim(directory_ppn)
        for region in regions.values():
            for page in region.pages:
                kernel.allocator.claim(page)
        return cls(machine, kernel, directory_ppn=directory_ppn,
                   _attached=regions)
