"""The kernel facade: processes, anonymous memory, faults, shredding.

Reproduces the Linux behaviour described in section 2.3:

* a newly mmap'd anonymous page is not backed; the first **read** maps
  it to the shared, read-only **Zero Page** (a minor fault);
* the first **write** takes a copy-on-write fault: the kernel allocates
  a physical page, *zeroes it* with the configured strategy (this is
  ``clear_page``, the call the paper instruments), and maps it
  writable;
* process exit returns pages to the allocator with their old contents
  intact — the zeroing before reuse is what protects them, so every
  allocation of a recycled page pays the shredding cost.

The kernel also exposes the section 7.2 syscalls: bulk zero-
initialisation of large regions through the shred command, used by the
user-level examples (sparse matrices, managed-language zero init).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..errors import PageFaultError, SimulationError
from .page_table import PageTableEntry
from .phys_alloc import PhysicalPageAllocator
from .process import Process, Region
from .zeroing import ZeroingEngine, ZeroingStats


@dataclass
class KernelStats:
    """Kernel-level event counters."""

    minor_faults: int = 0           # zero-page mappings on read
    cow_faults: int = 0             # allocate+zero on first write
    fault_ns: float = 0.0           # total time spent in fault handling
    zeroing_ns: float = 0.0         # of which page zeroing
    pages_allocated: int = 0
    pages_recycled: int = 0         # allocations that reused a freed page
    huge_faults: int = 0            # huge-page populations
    shred_syscalls: int = 0

    @property
    def zeroing_fraction_of_fault_time(self) -> float:
        """The paper's motivating metric: up to ~40 % in real kernels."""
        return self.zeroing_ns / self.fault_ns if self.fault_ns else 0.0


@dataclass
class TranslationResult:
    """Physical address plus any fault cost paid to produce it."""

    physical: int
    fault_ns: float = 0.0
    faulted: bool = False
    zeroed_page: bool = False
    writable: bool = True
    huge: bool = False


class Kernel:
    """Kernel model bound to one machine."""

    def __init__(self, machine, *, allocator: Optional[PhysicalPageAllocator] = None,
                 zeroing: Optional[ZeroingEngine] = None) -> None:
        self.machine = machine
        self.config = machine.config
        self.page_size = self.config.kernel.page_size
        num_pages = self.config.num_pages
        if allocator is None:
            # Page 0 is the shared Zero Page; pages 1.. are the pool.
            allocator = PhysicalPageAllocator.over_range(1, num_pages - 1)
        self.allocator = allocator
        self.zeroing = zeroing if zeroing is not None else ZeroingEngine(machine)
        self.zero_page_ppn = 0
        self.system = None            # set by repro.sim.System (TLB shootdown)
        self.processes: Dict[int, Process] = {}
        self._next_pid = 1
        self._ever_allocated: set = set()
        self.stats = KernelStats()
        self._fault_overhead_ns = (self.config.kernel.fault_overhead_cycles
                                   * self.config.cpu.cycle_ns)
        self._zero_page_cow = self.config.kernel.zero_page_cow
        self._init_zero_page()
        if self.config.kernel.prezero_pool_pages:
            self.stock_prezeroed(self.config.kernel.prezero_pool_pages)

    def _init_zero_page(self) -> None:
        """Boot-time formatting: the shared Zero Page must read as zeros.

        On a Silent Shredder machine one shred command suffices (its
        blocks become zero-fill reads); the baseline writes actual zero
        blocks once at boot.
        """
        page_size = self.page_size
        if self.machine.shred_register is not None:
            self.machine.shred_register.write(
                self.zero_page_ppn * page_size, kernel_mode=True)
            return
        block_size = self.config.block_size
        zero_block = bytes(block_size) if self.machine.functional else None
        base = self.zero_page_ppn * page_size
        for offset in range(0, page_size, block_size):
            self.machine.controller.store_block(base + offset, zero_block)

    # -- process lifecycle ----------------------------------------------------

    def create_process(self) -> Process:
        process = Process(self._next_pid, self.page_size)
        self.processes[process.pid] = process
        self._next_pid += 1
        return process

    def exit_process(self, pid: int) -> int:
        """Tear a process down; its pages return to the pool un-zeroed."""
        process = self.processes.pop(pid, None)
        if process is None:
            raise SimulationError(f"no such process {pid}")
        freed = 0
        for _vpn, entry in process.page_table.mapped_vpns():
            if entry.ppn != self.zero_page_ppn:
                self.allocator.free(entry.ppn)
                freed += 1
        return freed

    def mmap(self, pid: int, length: int, *, huge: bool = False) -> Region:
        """Reserve anonymous memory; ``huge`` requests 2 MB-unit backing
        (section 5: huge pages are shredded as a sequence of 4 KB shred
        commands, exactly like ``clear_huge_page`` calls ``clear_page``)."""
        return self._process(pid).mmap(
            length, huge=huge,
            huge_page_size=self.config.kernel.huge_page_size)

    def _process(self, pid: int) -> Process:
        process = self.processes.get(pid)
        if process is None:
            raise SimulationError(f"no such process {pid}")
        return process

    # -- address translation with fault handling ----------------------------------

    def translate(self, pid: int, vaddr: int, *, write: bool,
                  core: int = 0, now_ns: float = 0.0) -> TranslationResult:
        """Resolve a virtual access, taking page faults as needed."""
        process = self._process(pid)
        table = process.page_table
        vpn = table.vpn_of(vaddr)
        entry = table.lookup(vpn)

        if entry is not None and (not write or entry.writable):
            return TranslationResult(
                physical=entry.ppn * self.page_size + vaddr % self.page_size,
                writable=entry.writable, huge=entry.huge)

        process.region_containing(vaddr)   # segfault check

        if not write:
            # Read of untouched anonymous memory: share the Zero Page.
            if not self._zero_page_cow:
                return self._fault_allocate(table, vpn, vaddr, core, now_ns)
            table.map(vpn, self.zero_page_ppn, writable=False, zero_page=True)
            self.stats.minor_faults += 1
            self.stats.fault_ns += self._fault_overhead_ns
            return TranslationResult(
                physical=self.zero_page_ppn * self.page_size + vaddr % self.page_size,
                fault_ns=self._fault_overhead_ns, faulted=True,
                writable=False)

        # Write fault: first touch, or COW away from the Zero Page.
        region = process.region_containing(vaddr)
        if region.huge:
            return self._fault_allocate_huge(table, region, vaddr, core,
                                             now_ns)
        return self._fault_allocate(table, vpn, vaddr, core, now_ns)

    def _fault_allocate(self, table, vpn: int, vaddr: int, core: int,
                        now_ns: float) -> TranslationResult:
        ppn, already_zeroed = self.allocator.allocate_with_state()
        recycled = ppn in self._ever_allocated
        self._ever_allocated.add(ppn)
        self.stats.pages_allocated += 1
        if recycled:
            self.stats.pages_recycled += 1

        zero_ns = 0.0
        zeroed = False
        if not already_zeroed:
            result = self.zeroing.zero_page(ppn, core=core, now_ns=now_ns)
            zero_ns = result.latency_ns
            zeroed = True
        table.map(vpn, ppn, writable=True)
        fault_ns = self._fault_overhead_ns + zero_ns
        self.stats.cow_faults += 1
        self.stats.fault_ns += fault_ns
        self.stats.zeroing_ns += zero_ns
        return TranslationResult(
            physical=ppn * self.page_size + vaddr % self.page_size,
            fault_ns=fault_ns, faulted=True, zeroed_page=zeroed)

    def _fault_allocate_huge(self, table, region: Region, vaddr: int,
                             core: int, now_ns: float) -> TranslationResult:
        """Populate one whole huge page: contiguous frames, zeroed 4 KB
        at a time (clear_huge_page semantics), mapped in one fault."""
        huge_size = self.config.kernel.huge_page_size
        base_pages = huge_size // self.page_size
        unit_start_va = vaddr - (vaddr - region.start) % huge_size
        frames = self.allocator.allocate_contiguous(base_pages)
        zero_ns = 0.0
        for frame in frames:
            recycled = frame in self._ever_allocated
            self._ever_allocated.add(frame)
            self.stats.pages_allocated += 1
            if recycled:
                self.stats.pages_recycled += 1
            result = self.zeroing.zero_page(frame, core=core,
                                            now_ns=now_ns + zero_ns)
            zero_ns += result.latency_ns
        first_vpn = table.vpn_of(unit_start_va)
        for index, frame in enumerate(frames):
            table.map(first_vpn + index, frame, writable=True)
            table.lookup(first_vpn + index).huge = True
        fault_ns = self._fault_overhead_ns + zero_ns
        self.stats.cow_faults += 1
        self.stats.huge_faults += 1
        self.stats.fault_ns += fault_ns
        self.stats.zeroing_ns += zero_ns
        ppn = frames[(vaddr - unit_start_va) // self.page_size]
        return TranslationResult(
            physical=ppn * self.page_size + vaddr % self.page_size,
            fault_ns=fault_ns, faulted=True, zeroed_page=True, huge=True)

    def munmap(self, pid: int, region: Region) -> int:
        """Unmap a region: its physical pages return to the pool, and
        every core's TLB drops the region's translations (shootdown).

        Like process exit, the freed pages keep their old contents; the
        shredding cost is paid at the next allocation. Returns the
        number of physical pages freed.
        """
        process = self._process(pid)
        if region not in process.regions:
            raise SimulationError(f"region at {region.start:#x} does not "
                                  f"belong to pid {pid}")
        table = process.page_table
        freed = 0
        for vpn in process.vpns_of_region(region):
            entry = table.lookup(vpn)
            if entry is None:
                continue
            table.unmap(vpn)
            if entry.ppn != self.zero_page_ppn:
                self.allocator.free(entry.ppn)
                freed += 1
        process.regions.remove(region)
        self._tlb_shootdown(region)
        return freed

    def _tlb_shootdown(self, region: Region) -> None:
        """Invalidate the region's translations in every context's TLB
        and charge each affected core an IPI cost."""
        shootdown_cycles = 200      # inter-processor interrupt + flush
        contexts = self.system.contexts if self.system is not None else []
        for ctx in contexts:
            if ctx.tlb is None:
                continue
            first_vpn = region.start // self.page_size
            for vpn in range(first_vpn,
                             first_vpn + region.length // self.page_size):
                ctx.tlb.invalidate(vpn)
            ctx.core.stall(shootdown_cycles)

    # -- pre-zeroed pool (FreeBSD-style) ------------------------------------------

    def stock_prezeroed(self, count: int) -> int:
        """Zero ``count`` free pages ahead of demand (idle-time work)."""
        pages = self.allocator.stock_prezeroed(count)
        for ppn in pages:
            self.zeroing.zero_page(ppn)
        return len(pages)

    # -- syscalls (section 7.2) ------------------------------------------------------

    def sys_shred(self, pid: int, vaddr: int, num_pages: int, *,
                  now_ns: float = 0.0) -> float:
        """Zero-initialise ``num_pages`` of a process's memory via shred.

        The process passes a virtual address; the kernel translates each
        page and submits a shred command for its physical frame. Pages
        still mapped to the Zero Page are skipped (they already read as
        zeros). Returns the total latency.
        """
        if self.machine.shred_register is None:
            raise SimulationError("kernel has no shred-capable controller")
        process = self._process(pid)
        if vaddr % self.page_size:
            raise PageFaultError(f"shred target {vaddr:#x} not page aligned")
        total_ns = 0.0
        self.stats.shred_syscalls += 1
        for i in range(num_pages):
            vpn = process.page_table.vpn_of(vaddr) + i
            entry = process.page_table.lookup(vpn)
            if entry is None or entry.zero_page:
                continue
            outcome = self.machine.shred_register.write(
                entry.ppn * self.page_size, kernel_mode=True,
                now_ns=now_ns + total_ns)
            total_ns += outcome.latency_ns
        return total_ns

    def user_shred_attempt(self, physical_address: int) -> None:
        """A user-space write to the MMIO register — must raise."""
        if self.machine.shred_register is None:
            raise SimulationError("no shred register present")
        self.machine.shred_register.write(physical_address, kernel_mode=False)

    @property
    def zeroing_stats(self) -> ZeroingStats:
        return self.zeroing.stats
