"""Silent Shredder: zero-cost shredding for secure NVM main memory.

A full reproduction of the ASPLOS 2016 paper by Awad, Manadhata,
Solihin, Haber and Horne: a secure non-volatile main-memory controller
that eliminates data-shredding writes by repurposing the initialization
vectors of counter-mode memory encryption.

Quickstart::

    from repro import System, fast_config, compare_runs
    from repro.workloads import spec_task, SPEC_BENCHMARKS

    params = SPEC_BENCHMARKS["GCC"].scaled(0.2)
    baseline = System(fast_config().with_zeroing("nontemporal"), shredder=False)
    baseline.run_single(spec_task(params))
    shredder = System(fast_config().with_zeroing("shred"), shredder=True)
    shredder.run_single(spec_task(params))
    print(compare_runs(baseline.report(), shredder.report(), "GCC").row())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every figure and table.
"""

from .config import (SystemConfig, CacheConfig, NVMConfig, DRAMConfig,
                     EncryptionConfig, CounterCacheConfig, CPUConfig,
                     KernelConfig, default_config, fast_config, bench_config,
                     config_digest)
from .errors import (ReproError, ConfigError, AddressError, AlignmentError,
                     OutOfMemoryError, PageFaultError, ProtectionError,
                     IntegrityError, EnduranceExceededError, CipherError,
                     CounterOverflowError, SimulationError, ExperimentError,
                     BackendError, WireProtocolError, ObservabilityError)
from .obs import MetricsRegistry, merge_snapshots, span
from .core import (SilentShredderController, SecureMemoryController,
                   ShredRegister, CounterBlock, IVLayout, make_policy)
from .sim import Machine, System, SystemReport, RunResult, compare_runs

__version__ = "1.1.0"

from .exec import (Experiment, Runner, ResultCache, run_experiments,
                   spec_experiment, powergraph_experiment, experiment_pair,
                   ExecutionBackend, SerialBackend, ForkPoolBackend,
                   DistributedBackend, ProgressEvent)

__all__ = [
    "AddressError",
    "AlignmentError",
    "BackendError",
    "CPUConfig",
    "CacheConfig",
    "CipherError",
    "ConfigError",
    "CounterBlock",
    "CounterCacheConfig",
    "CounterOverflowError",
    "DRAMConfig",
    "EncryptionConfig",
    "DistributedBackend",
    "EnduranceExceededError",
    "ExecutionBackend",
    "Experiment",
    "ExperimentError",
    "ForkPoolBackend",
    "IVLayout",
    "IntegrityError",
    "KernelConfig",
    "Machine",
    "MetricsRegistry",
    "NVMConfig",
    "ObservabilityError",
    "OutOfMemoryError",
    "PageFaultError",
    "ProgressEvent",
    "ProtectionError",
    "ReproError",
    "ResultCache",
    "RunResult",
    "Runner",
    "SecureMemoryController",
    "SerialBackend",
    "ShredRegister",
    "SilentShredderController",
    "SimulationError",
    "System",
    "SystemConfig",
    "SystemReport",
    "bench_config",
    "compare_runs",
    "config_digest",
    "default_config",
    "experiment_pair",
    "fast_config",
    "make_policy",
    "merge_snapshots",
    "powergraph_experiment",
    "run_experiments",
    "span",
    "spec_experiment",
    "WireProtocolError",
    "__version__",
]
