"""Setup shim so `pip install -e .` works with older tooling (no network)."""
from setuptools import setup

setup()
